"""Churn simulation: random node failures against overlay graphs (§1.4).

The paper argues its overlays resist oblivious churn: *"If the nodes fail
independently and random with a certain probability, say p, a logarithmic
sized minimum cut (of different nodes) is enough to keep the network
connected w.h.p."*  This module provides the measurement machinery for
that claim (used by the X3 bench and the ``churn_recovery`` example):

- :func:`fail_nodes` — kill an independent ``p``-fraction of nodes and
  return the surviving induced adjacency;
- :func:`churn_report` — connectivity structure of the survivors
  (largest component fraction, component count);
- :func:`survival_curve` — sweep ``p`` over seeds for a whole graph,
  producing the robustness curve that contrasts the expander overlay
  with its fragile input topology;
- :func:`rebuild_survivor_overlay` — the paper's "throw away and
  reconstruct" step: re-run the Theorem 1.1 pipeline on the largest
  surviving component, on any execution tier (``rooting="batch"`` by
  default, so churn re-runs no longer drive the object-level paths).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.analysis import adjacency_sets, connected_components

__all__ = [
    "ChurnReport",
    "SurvivorRebuild",
    "fail_mask",
    "fail_nodes",
    "churn_report",
    "survival_curve",
    "rebuild_survivor_overlay",
]


def fail_mask(n: int, p: float, rng: np.random.Generator) -> np.ndarray:
    """Alive-mask of ``n`` nodes failing independently with probability ``p``.

    The single node-failure draw shared by graph-level churn
    (:func:`fail_nodes`) and the message-level crash waves of the
    adversarial scenario engine
    (:class:`repro.scenarios.spec.CrashWave`) — one ``rng.random(n)``
    comparison, so the two layers agree on what "fail independently with
    probability p" consumes from a stream.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    return rng.random(n) > p


@dataclass
class ChurnReport:
    """Connectivity of the survivors after one churn event."""

    survivors: int
    components: int
    largest_component: int

    @property
    def largest_fraction(self) -> float:
        """Largest surviving component as a fraction of survivors."""
        if self.survivors == 0:
            return 0.0
        return self.largest_component / self.survivors

    @property
    def stayed_connected(self) -> bool:
        return self.components <= 1


def fail_nodes(
    graph, p: float, rng: np.random.Generator
) -> tuple[list[set[int]], np.ndarray]:
    """Kill each node independently with probability ``p``.

    Returns ``(surviving_adjacency, alive_mask)``; dead nodes keep empty
    adjacency entries (original labels preserved).
    """
    adj = adjacency_sets(graph)
    n = len(adj)
    alive = fail_mask(n, p, rng)
    surviving = [
        {u for u in neigh if alive[u]} if alive[v] else set()
        for v, neigh in enumerate(adj)
    ]
    return surviving, alive


def _alive_components(
    surviving_adj: list[set[int]], alive: np.ndarray
) -> list[list[int]]:
    """Connected components of the survivors (dead nodes' empty entries
    excluded) — shared by the report and the rebuild path."""
    return [c for c in connected_components(surviving_adj) if alive[c[0]]]


def _report_from_components(comps: list[list[int]], alive: np.ndarray) -> ChurnReport:
    return ChurnReport(
        survivors=int(alive.sum()),
        components=len(comps),
        largest_component=max((len(c) for c in comps), default=0),
    )


def churn_report(surviving_adj: list[set[int]], alive: np.ndarray) -> ChurnReport:
    """Connectivity structure of one churn outcome."""
    return _report_from_components(_alive_components(surviving_adj, alive), alive)


@dataclass
class SurvivorRebuild:
    """Outcome of one churn-then-reconstruct cycle.

    ``survivors`` holds the *original* labels (sorted ascending) of the
    largest surviving component; ``overlay`` is the Theorem 1.1 build on
    that component relabelled to ``0..k-1`` (position in ``survivors``),
    so ``survivors[overlay.bfs.parent[i]]`` recovers original-label
    parents.
    """

    report: ChurnReport
    survivors: np.ndarray
    overlay: object  # OverlayBuildResult (import kept lazy, see below)


def rebuild_survivor_overlay(
    graph,
    p: float,
    rng: np.random.Generator,
    rooting: str | None = None,
    expander: str | None = None,
    params=None,
    hybrid: str | None = None,
    overlay_params=None,
    *,
    ctx=None,
) -> SurvivorRebuild:
    """Churn the graph, then rebuild a fresh overlay on the survivors.

    The §1.4 recovery step end-to-end: kill an independent ``p``-fraction
    of nodes, take the largest surviving component, and re-run
    :func:`repro.core.pipeline.build_well_formed_tree` on it — with the
    rooting (and optionally expander) phase on the chosen execution tier,
    batched by default.  The build draws from ``rng.spawn()`` *after* the
    churn draw, so under a matched seed every tier reconstructs the
    identical survivor overlay (the regression pinned by
    ``tests/graphs/test_churn.py``).

    Passing ``hybrid`` (a tier from
    :data:`repro.hybrid.components.HYBRID_TIERS`) switches the rebuild to
    the §4 pipeline instead: *all* surviving components — not just the
    largest — get per-component well-formed trees via
    :func:`repro.hybrid.components.connected_components_hybrid` on the
    chosen tier (``"soa"`` keeps churn-rebuild loops practical at
    ``n ≥ 10⁵``), with ``overlay_params`` forwarded to the hybrid
    overlay.  ``survivors`` then lists every survivor and ``overlay`` is
    the :class:`~repro.hybrid.components.ComponentsResult`.  Both hybrid
    tiers rebuild bit-for-bit identically under a matched seed.

    A resolved ``ctx`` (:class:`~repro.runtime.context.RunContext`)
    supplies ``rooting``/``expander`` (Theorem 1.1 mode) and is threaded
    into every network the rebuild constructs; explicit kwargs win.
    ``ctx`` never *selects* hybrid mode — ``hybrid=None`` always means
    the Theorem 1.1 rebuild, and the hybrid tier comes from the explicit
    kwarg (``ctx.hybrid`` configures the pipeline only once selected).

    Raises
    ------
    ValueError
        If churn leaves fewer than two connected survivors (fewer than
        two survivors total in hybrid mode) — there is no overlay to
        rebuild.
    """
    # Lazy import: repro.core imports this package at module load.
    from repro.core.pipeline import build_well_formed_tree
    import networkx as nx

    if hybrid is not None:
        # Columnar end to end: the fail draw is the same single
        # ``fail_mask`` comparison the per-node path consumes, so hybrid
        # and non-hybrid rebuilds stay seed-matched, but the survivor
        # graph, the churn report, and the rebuild never materialise
        # per-node sets — which is what keeps this path practical at the
        # n ≥ 10⁵ scale it exists for.
        from repro.hybrid.components import connected_components_hybrid
        from repro.hybrid.soa_pipeline import CSRAdjacency, flood_min_ids_columns
        from repro.runtime import validate_tier

        validate_tier("hybrid", hybrid)
        if params is not None or rooting not in (None, "batch") or expander not in (
            None,
            "walks",
        ):
            raise ValueError(
                "params/rooting/expander configure the Theorem 1.1 rebuild "
                "and are ignored by the hybrid pipeline — pass overlay_params "
                "instead (or drop hybrid=)"
            )
        csr = CSRAdjacency.from_graph(graph)
        alive = fail_mask(csr.n, p, rng)
        build_rng = rng.spawn(1)[0]
        survivors = np.flatnonzero(alive).astype(np.int64)
        if survivors.shape[0] < 2:
            raise ValueError(
                f"churn at p={p} left fewer than 2 survivors to rebuild on"
            )
        survivor_graph = csr.induced_by(alive)
        labels, _rounds = flood_min_ids_columns(survivor_graph)
        report = ChurnReport(
            survivors=int(survivors.shape[0]),
            components=int(np.unique(labels).shape[0]),
            largest_component=int(np.bincount(labels).max()),
        )
        components = connected_components_hybrid(
            survivor_graph,
            rng=build_rng,
            overlay_params=overlay_params,
            tier=hybrid,
            ctx=ctx,
        )
        return SurvivorRebuild(report=report, survivors=survivors, overlay=components)

    adj = adjacency_sets(graph)
    surviving, alive = fail_nodes(adj, p, rng)
    build_rng = rng.spawn(1)[0]
    comps = _alive_components(surviving, alive)
    report = _report_from_components(comps, alive)

    largest = max(comps, key=len, default=[])
    if len(largest) < 2:
        raise ValueError(
            f"churn at p={p} left no component with >= 2 nodes to rebuild on"
        )
    survivors = np.array(sorted(largest), dtype=np.int64)
    relabel = {int(v): i for i, v in enumerate(survivors.tolist())}
    g = nx.Graph()
    g.add_nodes_from(range(survivors.shape[0]))
    for v in survivors.tolist():
        for u in surviving[v]:
            if u > v:
                g.add_edge(relabel[v], relabel[u])
    if ctx is None:
        # Historical defaults: the Theorem 1.1 rebuild runs the batched
        # rooting tier (not the pipeline's "reference" oracle).
        rooting = rooting if rooting is not None else "batch"
        expander = expander if expander is not None else "walks"
    overlay = build_well_formed_tree(
        g, params=params, rng=build_rng, rooting=rooting, expander=expander, ctx=ctx
    )
    return SurvivorRebuild(report=report, survivors=survivors, overlay=overlay)


def survival_curve(
    graph,
    failure_probs: list[float],
    rng: np.random.Generator,
    trials: int = 5,
) -> list[dict]:
    """Sweep churn levels; average the connectivity structure per level.

    Returns one dict per ``p`` with mean largest-component fraction,
    mean component count, and the fraction of trials that stayed
    connected.
    """
    adj = adjacency_sets(graph)
    rows = []
    for p in failure_probs:
        fractions = []
        comp_counts = []
        connected_trials = 0
        for _ in range(trials):
            surviving, alive = fail_nodes(adj, p, rng)
            report = churn_report(surviving, alive)
            fractions.append(report.largest_fraction)
            comp_counts.append(report.components)
            connected_trials += int(report.stayed_connected)
        rows.append(
            {
                "p": p,
                "mean_largest_fraction": float(np.mean(fractions)),
                "mean_components": float(np.mean(comp_counts)),
                "connected_rate": connected_trials / trials,
            }
        )
    return rows
