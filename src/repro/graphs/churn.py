"""Churn simulation: random node failures against overlay graphs (§1.4).

The paper argues its overlays resist oblivious churn: *"If the nodes fail
independently and random with a certain probability, say p, a logarithmic
sized minimum cut (of different nodes) is enough to keep the network
connected w.h.p."*  This module provides the measurement machinery for
that claim (used by the X3 bench and the ``churn_recovery`` example):

- :func:`fail_nodes` — kill an independent ``p``-fraction of nodes and
  return the surviving induced adjacency;
- :func:`churn_report` — connectivity structure of the survivors
  (largest component fraction, component count);
- :func:`survival_curve` — sweep ``p`` over seeds for a whole graph,
  producing the robustness curve that contrasts the expander overlay
  with its fragile input topology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.analysis import adjacency_sets, connected_components

__all__ = ["ChurnReport", "fail_nodes", "churn_report", "survival_curve"]


@dataclass
class ChurnReport:
    """Connectivity of the survivors after one churn event."""

    survivors: int
    components: int
    largest_component: int

    @property
    def largest_fraction(self) -> float:
        """Largest surviving component as a fraction of survivors."""
        if self.survivors == 0:
            return 0.0
        return self.largest_component / self.survivors

    @property
    def stayed_connected(self) -> bool:
        return self.components <= 1


def fail_nodes(
    graph, p: float, rng: np.random.Generator
) -> tuple[list[set[int]], np.ndarray]:
    """Kill each node independently with probability ``p``.

    Returns ``(surviving_adjacency, alive_mask)``; dead nodes keep empty
    adjacency entries (original labels preserved).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    adj = adjacency_sets(graph)
    n = len(adj)
    alive = rng.random(n) > p
    surviving = [
        {u for u in neigh if alive[u]} if alive[v] else set()
        for v, neigh in enumerate(adj)
    ]
    return surviving, alive


def churn_report(surviving_adj: list[set[int]], alive: np.ndarray) -> ChurnReport:
    """Connectivity structure of one churn outcome."""
    comps = [
        c for c in connected_components(surviving_adj) if alive[c[0]]
    ]
    survivors = int(alive.sum())
    return ChurnReport(
        survivors=survivors,
        components=len(comps),
        largest_component=max((len(c) for c in comps), default=0),
    )


def survival_curve(
    graph,
    failure_probs: list[float],
    rng: np.random.Generator,
    trials: int = 5,
) -> list[dict]:
    """Sweep churn levels; average the connectivity structure per level.

    Returns one dict per ``p`` with mean largest-component fraction,
    mean component count, and the fraction of trials that stayed
    connected.
    """
    adj = adjacency_sets(graph)
    rows = []
    for p in failure_probs:
        fractions = []
        comp_counts = []
        connected_trials = 0
        for _ in range(trials):
            surviving, alive = fail_nodes(adj, p, rng)
            report = churn_report(surviving, alive)
            fractions.append(report.largest_fraction)
            comp_counts.append(report.components)
            connected_trials += int(report.stayed_connected)
        rows.append(
            {
                "p": p,
                "mean_largest_fraction": float(np.mean(fractions)),
                "mean_components": float(np.mean(comp_counts)),
                "connected_rate": connected_trials / trials,
            }
        )
    return rows
