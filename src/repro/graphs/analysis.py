"""From-scratch structural graph analysis: BFS, diameter, components,
and conductance.

All routines here operate on *adjacency sets* (``list[set[int]]``), the
lowest-common-denominator representation shared by :class:`nx.Graph`
workloads and :class:`repro.graphs.portgraph.PortGraph` overlays, so that
every algorithm in the repository can be measured with the same tools.

Conductance notes
-----------------
For a ``Δ``-regular (multi)graph the paper defines (Definition 1.7)::

    Φ(S) = |E(S, V \\ S)| / (Δ |S|),        |S| ≤ n/2

Exact minimisation over all subsets is exponential; :func:`conductance_exact`
enumerates subsets and is intentionally capped at small ``n`` (it anchors the
spectral estimates used at scale — see :mod:`repro.graphs.spectral`).
"""

from __future__ import annotations

from collections import deque
from itertools import combinations
from typing import Iterable, Sequence

import networkx as nx
import numpy as np

__all__ = [
    "adjacency_sets",
    "bfs_distances",
    "bfs_tree",
    "connected_components",
    "is_connected",
    "diameter",
    "eccentricity",
    "conductance_of_set",
    "conductance_exact",
    "edge_boundary_size",
    "vertex_expansion_of_set",
    "min_vertex_expansion_exact",
    "degree_stats",
]


def adjacency_sets(graph) -> list[set[int]]:
    """Normalise a graph-like object into ``list[set[int]]`` adjacency.

    Accepts a :class:`networkx.Graph`/``DiGraph`` (directions ignored, per
    the paper's convention of treating the knowledge graph as undirected), a
    :class:`PortGraph`, or an existing adjacency list (returned as-is after
    a shallow copy).
    """
    if hasattr(graph, "neighbor_sets"):  # PortGraph
        return graph.neighbor_sets()
    if hasattr(graph, "to_sets"):  # CSRAdjacency (repro.hybrid.soa_pipeline)
        return graph.to_sets()
    if isinstance(graph, (nx.Graph, nx.DiGraph)):
        n = graph.number_of_nodes()
        adj: list[set[int]] = [set() for _ in range(n)]
        for a, b in graph.edges:
            if a == b:
                continue
            adj[a].add(b)
            adj[b].add(a)
        return adj
    return [set(neigh) for neigh in graph]


def bfs_distances(adj: Sequence[set[int]], source: int) -> np.ndarray:
    """Hop distances from ``source``; unreachable nodes get ``-1``."""
    n = len(adj)
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in adj[v]:
            if dist[u] < 0:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def bfs_tree(adj: Sequence[set[int]], root: int) -> np.ndarray:
    """Parent array of a BFS tree rooted at ``root`` (parent of root is
    ``root`` itself; unreachable nodes get ``-1``).

    Ties between equally close parents are broken towards the smallest
    node id, matching the deterministic tie-breaks used by the distributed
    BFS in :mod:`repro.core.bfs` so the two can be cross-checked.
    """
    n = len(adj)
    parent = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    frontier = [root]
    while frontier:
        nxt: list[int] = []
        for v in sorted(frontier):
            for u in sorted(adj[v]):
                if parent[u] < 0:
                    parent[u] = v
                    nxt.append(u)
        frontier = nxt
    return parent


def connected_components(adj: Sequence[set[int]]) -> list[list[int]]:
    """Connected components as sorted node lists (BFS sweep)."""
    n = len(adj)
    seen = np.zeros(n, dtype=bool)
    comps: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        comp = [start]
        seen[start] = True
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in adj[v]:
                if not seen[u]:
                    seen[u] = True
                    comp.append(u)
                    queue.append(u)
        comps.append(sorted(comp))
    return comps


def is_connected(adj: Sequence[set[int]]) -> bool:
    """True if the (undirected) graph has a single connected component."""
    if len(adj) == 0:
        return True
    return int((bfs_distances(adj, 0) >= 0).sum()) == len(adj)


def eccentricity(adj: Sequence[set[int]], source: int) -> int:
    """Maximum hop distance from ``source``; raises if disconnected."""
    dist = bfs_distances(adj, source)
    if (dist < 0).any():
        raise ValueError("graph is disconnected")
    return int(dist.max())


def diameter(adj: Sequence[set[int]], exact_threshold: int = 2048) -> int:
    """Graph diameter (maximum pairwise hop distance).

    Exact (all-pairs BFS) for ``n ≤ exact_threshold``; beyond that uses a
    standard double-sweep + random-probe *lower-bound* heuristic, which is
    exact on trees and empirically tight on the expander-like graphs this
    repository produces.  Every experiment that feeds large graphs here
    only needs an upper-bound *check* ("diameter ≤ c log n"), for which a
    lower-bound estimate failing the check would be a true failure.
    """
    n = len(adj)
    if n == 0:
        return 0
    if not is_connected(adj):
        raise ValueError("diameter undefined for disconnected graph")
    if n <= exact_threshold:
        best = 0
        for v in range(n):
            best = max(best, int(bfs_distances(adj, v).max()))
        return best
    # Double sweep from a few probes.
    best = 0
    probes = {0, n // 2, n - 1}
    for p in probes:
        dist = bfs_distances(adj, p)
        far = int(dist.argmax())
        best = max(best, int(bfs_distances(adj, far).max()))
    return best


def edge_boundary_size(adj: Sequence[set[int]], subset: Iterable[int]) -> int:
    """Number of (simple-graph) edges leaving ``subset``."""
    inside = set(subset)
    return sum(1 for v in inside for u in adj[v] if u not in inside)


def conductance_of_set(graph, subset: Iterable[int]) -> float:
    """Conductance ``Φ(S)`` of a node subset per Definition 1.7.

    For a :class:`PortGraph` the boundary counts parallel edges and the
    denominator is ``Δ |S|``; for a simple graph the denominator uses the
    maximum degree (the regularised form used throughout the paper).
    """
    subset = set(subset)
    if not subset:
        raise ValueError("subset must be non-empty")
    if hasattr(graph, "ports"):  # PortGraph: count ports crossing the cut
        ports = graph.ports
        inside = np.zeros(graph.n, dtype=bool)
        inside[list(subset)] = True
        crossing = int((inside[:, None] & ~inside[ports])[list(subset)].sum())
        return crossing / (graph.delta * len(subset))
    adj = adjacency_sets(graph)
    degree = max((len(a) for a in adj), default=1) or 1
    return edge_boundary_size(adj, subset) / (degree * len(subset))


def conductance_exact(graph, max_n: int = 18) -> float:
    """Exact conductance ``Φ(G) = min_{|S| ≤ n/2} Φ(S)`` by enumeration.

    Exponential in ``n``; guarded by ``max_n``.  Used to validate the
    spectral estimates (Cheeger sandwich) on small graphs.
    """
    if hasattr(graph, "ports"):
        n = graph.n
    else:
        adj = adjacency_sets(graph)
        n = len(adj)
    if n > max_n:
        raise ValueError(f"exact conductance capped at n={max_n} (got n={n})")
    if n < 2:
        raise ValueError("conductance needs at least 2 nodes")
    best = float("inf")
    nodes = list(range(n))
    for size in range(1, n // 2 + 1):
        for subset in combinations(nodes, size):
            best = min(best, conductance_of_set(graph, subset))
    return best


def vertex_expansion_of_set(adj: Sequence[set[int]], subset: Iterable[int]) -> float:
    """Vertex expansion ``|N(S) \\ S| / |S|`` of a node subset.

    §5 of the paper proposes tracking vertex expansion (not just edge
    conductance) to argue churn robustness: a set must not only have many
    outgoing *edges* but reach many *distinct* nodes, so that failures
    cannot sever it by killing a few neighbours.  Used by the churn
    experiments as a complementary robustness measure.
    """
    inside = set(subset)
    if not inside:
        raise ValueError("subset must be non-empty")
    boundary = {u for v in inside for u in adj[v] if u not in inside}
    return len(boundary) / len(inside)


def min_vertex_expansion_exact(adj: Sequence[set[int]], max_n: int = 16) -> float:
    """Exact minimum vertex expansion over subsets of size ≤ n/2.

    Exponential; guarded by ``max_n``.  Anchors the sampled estimates in
    the robustness analyses.
    """
    n = len(adj)
    if n > max_n:
        raise ValueError(f"exact vertex expansion capped at n={max_n}")
    if n < 2:
        raise ValueError("need at least 2 nodes")
    best = float("inf")
    nodes = list(range(n))
    for size in range(1, n // 2 + 1):
        for subset in combinations(nodes, size):
            best = min(best, vertex_expansion_of_set(adj, subset))
    return best


def degree_stats(adj: Sequence[set[int]]) -> dict[str, float]:
    """Simple degree summary used in experiment tables."""
    degrees = np.array([len(a) for a in adj], dtype=np.int64)
    if degrees.size == 0:
        return {"min": 0, "max": 0, "mean": 0.0}
    return {
        "min": int(degrees.min()),
        "max": int(degrees.max()),
        "mean": float(degrees.mean()),
    }
