"""Graph substrate: topology generators, port multigraphs, and analysis.

This subpackage provides everything the overlay-construction algorithms need
to know about graphs:

- :mod:`repro.graphs.generators` — adversarial and benign input topologies
  (lines, cycles, grids, trees, barbells, expanders, multi-component
  mixtures) used as workloads throughout the test and benchmark suites.
- :mod:`repro.graphs.portgraph` — the ``Δ``-regular lazy multigraph
  representation ("benign graph", Definition 2.1 of the paper) on which
  every evolution of ``CreateExpander`` operates.
- :mod:`repro.graphs.analysis` — BFS-based diameter/connectivity and exact
  small-graph conductance.
- :mod:`repro.graphs.spectral` — spectral gap of the lazy walk matrix,
  Cheeger bounds, and Fiedler sweep cuts.
- :mod:`repro.graphs.mincut` — a from-scratch Stoer–Wagner global minimum
  cut used to check the ``Λ``-cut benignness invariant.
"""

from repro.graphs.portgraph import PortGraph
from repro.graphs.analysis import (
    adjacency_sets,
    bfs_distances,
    connected_components,
    conductance_exact,
    conductance_of_set,
    diameter,
    is_connected,
)
from repro.graphs.spectral import (
    cheeger_bounds,
    fiedler_sweep_conductance,
    lazy_walk_matrix,
    spectral_gap,
)
from repro.graphs.mincut import stoer_wagner_min_cut
from repro.graphs.unionfind import UnionFind
from repro.graphs.rmq import SparseTable
from repro.graphs.churn import ChurnReport, churn_report, fail_nodes, survival_curve

__all__ = [
    "PortGraph",
    "adjacency_sets",
    "bfs_distances",
    "connected_components",
    "conductance_exact",
    "conductance_of_set",
    "diameter",
    "is_connected",
    "cheeger_bounds",
    "fiedler_sweep_conductance",
    "lazy_walk_matrix",
    "spectral_gap",
    "stoer_wagner_min_cut",
    "UnionFind",
    "SparseTable",
    "ChurnReport",
    "churn_report",
    "fail_nodes",
    "survival_curve",
]
