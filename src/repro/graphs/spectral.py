"""Spectral conductance estimation for evolution graphs.

The paper's analysis (Section 3, via Kwok–Lau) is driven by the behaviour of
the random-walk matrix ``A`` of each benign graph ``G_i``.  Measuring the
true conductance of large graphs is NP-hard, so the experiment harness
tracks the quantities the theory itself uses:

- the **spectral gap** ``1 − λ₂(A)`` of the lazy walk matrix, related to
  conductance through Cheeger's inequality
  ``Φ² / 2 ≤ 1 − λ₂ ≤ 2 Φ``;
- a **Fiedler sweep cut**, which exhibits an actual subset whose
  conductance upper-bounds ``Φ(G)`` (and by Cheeger is within a quadratic
  factor of optimal).

Together they sandwich the conductance tightly enough to demonstrate the
paper's claims: the gap rising to a constant ⇔ conductance rising to a
constant ⇔ diameter collapsing to ``O(log n)``.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse
import scipy.sparse.linalg

from repro.graphs.analysis import adjacency_sets

__all__ = [
    "lazy_walk_matrix",
    "spectral_gap",
    "cheeger_bounds",
    "fiedler_sweep_conductance",
    "conductance_interval",
]


def lazy_walk_matrix(graph) -> np.ndarray:
    """Random-walk transition matrix of a graph, forced lazy.

    For a :class:`PortGraph` this is its own walk matrix (benign graphs are
    lazy by construction, no adjustment made).  For a simple graph it is
    the standard lazy walk ``(I + D⁻¹A) / 2`` — laziness removes the
    bipartite ``−1`` eigenvalue so the spectral gap is meaningful.
    """
    if hasattr(graph, "walk_matrix"):
        return graph.walk_matrix()
    adj = adjacency_sets(graph)
    n = len(adj)
    mat = np.zeros((n, n), dtype=np.float64)
    for v, neigh in enumerate(adj):
        if not neigh:
            mat[v, v] = 1.0
            continue
        share = 1.0 / (2 * len(neigh))
        for u in neigh:
            mat[v, u] = share
        mat[v, v] = 0.5
    return mat


def _sparse_walk_matrix(port_graph) -> scipy.sparse.csr_matrix:
    """Sparse CSR walk matrix of a :class:`PortGraph` (symmetric)."""
    n, delta = port_graph.ports.shape
    rows = np.repeat(np.arange(n), delta)
    cols = port_graph.ports.ravel()
    data = np.full(rows.shape[0], 1.0 / delta)
    mat = scipy.sparse.coo_matrix((data, (rows, cols)), shape=(n, n))
    return mat.tocsr()


def spectral_gap(graph, sparse_threshold: int = 1500) -> float:
    """``1 − λ₂`` of the (lazy) walk matrix.

    ``λ₂`` is the second-largest eigenvalue.  The walk matrices produced by
    this repository are symmetric (regular undirected multigraphs), so we
    use a symmetric eigensolver; for mildly asymmetric matrices (lazy walks
    on irregular simple graphs) we symmetrise via the similarity transform
    ``D^{1/2} P D^{-1/2}``, which preserves the spectrum.

    Port graphs with more than ``sparse_threshold`` nodes use a sparse
    Lanczos solver (two extremal eigenvalues) instead of a dense solve,
    keeping large-``n`` experiments feasible.
    """
    if hasattr(graph, "ports") and graph.n > sparse_threshold:
        mat = _sparse_walk_matrix(graph)
        eigs = scipy.sparse.linalg.eigsh(mat, k=2, which="LA", return_eigenvectors=False)
        return 1.0 - float(np.sort(eigs)[0])
    mat = lazy_walk_matrix(graph)
    n = mat.shape[0]
    if n < 2:
        return 1.0
    if not np.allclose(mat, mat.T, atol=1e-12):
        row_sums = mat.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-9):
            raise ValueError("walk matrix is not stochastic")
        # Lazy walk on irregular graph: P = I/2 + D^-1 A / 2 is similar to
        # the symmetric matrix D^-1/2 (D/2 + A/2) D^-1/2.
        deg = np.maximum((mat > 0).sum(axis=1) - 1, 1).astype(float)
        d_half = np.sqrt(deg)
        sym = (mat * d_half[:, None]) / d_half[None, :]
        sym = (sym + sym.T) / 2
        eigs = np.linalg.eigvalsh(sym)
    else:
        eigs = np.linalg.eigvalsh(mat)
    lam2 = float(eigs[-2])
    return 1.0 - lam2


def cheeger_bounds(gap: float) -> tuple[float, float]:
    """Cheeger sandwich ``(Φ_lower, Φ_upper)`` from a spectral gap.

    For lazy walks: ``gap / 2 ≤ Φ ≤ √(2 · gap)``.
    """
    gap = max(0.0, gap)
    return gap / 2.0, math.sqrt(2.0 * gap)


def fiedler_sweep_conductance(graph) -> float:
    """Sweep-cut conductance upper bound from the Fiedler vector.

    Sorts nodes by the eigenvector of ``λ₂`` and returns the best prefix-set
    conductance.  This is a certified *upper bound* on ``Φ(G)`` (it exhibits
    a concrete subset) and, by Cheeger's inequality, is at most
    ``√(2 · gap)``.
    """
    mat = lazy_walk_matrix(graph)
    n = mat.shape[0]
    if n < 2:
        return 1.0
    sym = (mat + mat.T) / 2
    eigvals, eigvecs = np.linalg.eigh(sym)
    fiedler = eigvecs[:, -2]
    order = np.argsort(fiedler)

    if hasattr(graph, "ports"):
        delta = graph.delta
        ports = graph.ports
        inside = np.zeros(n, dtype=bool)
        crossing = 0
        best = 1.0
        for i, v in enumerate(order[: n // 2 + 1]):
            v = int(v)
            # Adding v: ports from v to outside add to the boundary, ports
            # from v to inside remove previously counted boundary ports.
            partners = ports[v]
            nonloop = partners != v
            inside_mask = inside[partners]
            crossing += int((nonloop & ~inside_mask).sum())
            crossing -= int((nonloop & inside_mask).sum())
            inside[v] = True
            size = i + 1
            if size <= n // 2:
                best = min(best, crossing / (delta * size))
        return best

    adj = adjacency_sets(graph)
    dmax = max((len(a) for a in adj), default=1) or 1
    inside: set[int] = set()
    crossing = 0
    best = 1.0
    for i, v in enumerate(order[: n // 2 + 1]):
        v = int(v)
        for u in adj[v]:
            crossing += -1 if u in inside else 1
        inside.add(v)
        size = i + 1
        if size <= n // 2:
            best = min(best, crossing / (dmax * size))
    return best


def conductance_interval(graph) -> tuple[float, float]:
    """Certified interval ``[Φ_lo, Φ_hi]`` containing the true conductance.

    ``Φ_lo`` comes from the spectral gap (Cheeger lower bound) and ``Φ_hi``
    from the Fiedler sweep cut (an explicit witness set).  The experiment
    tables report both ends.
    """
    gap = spectral_gap(graph)
    lower, _ = cheeger_bounds(gap)
    upper = fiedler_sweep_conductance(graph)
    # Numerical guard: the witness can only be above the certified lower
    # bound up to eigensolver tolerance.
    return min(lower, upper), upper
