"""Disjoint-set forest (union–find) with path compression and union by rank.

Used as the ground-truth component oracle in tests and as the in-memory
realisation of "connected components of the helper graph ``G''``" inside
the Tarjan–Vishkin biconnectivity algorithm (Theorem 1.4) when the full
distributed components machinery is not being exercised.
"""

from __future__ import annotations

__all__ = ["UnionFind"]


class UnionFind:
    """Classic disjoint-set forest over elements ``0 .. n-1``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self._parent = list(range(n))
        self._rank = [0] * n
        self._count = n

    @property
    def num_sets(self) -> int:
        """Number of disjoint sets currently represented."""
        return self._count

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path compression)."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._count -= 1
        return True

    def groups(self) -> dict[int, list[int]]:
        """All sets, keyed by representative, members sorted."""
        out: dict[int, list[int]] = {}
        for x in range(len(self._parent)):
            out.setdefault(self.find(x), []).append(x)
        return out
