"""Workload topologies for overlay-construction experiments.

The paper's guarantees are *worst case over weakly connected input graphs*,
so the interesting workloads are the adversarially badly-connected ones: a
line has conductance ``Θ(1/n)``, a barbell ``Θ(1/n²)`` locally around its
bridge, grids ``Θ(1/√n)``, and so on.  The generators below construct all
graphs used by the test suite and the experiment harness.

All generators return a :class:`networkx.Graph` with nodes labelled
``0 .. n-1``.  ``networkx`` is used purely as a container — every structural
algorithm in this repository (BFS, cuts, conductance, components, …) is
implemented from scratch; ``networkx``'s own algorithms only appear in
*tests* as differential ground truth.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

__all__ = [
    "line_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "binary_tree",
    "random_tree",
    "caterpillar",
    "double_star",
    "grid_2d",
    "torus_2d",
    "hypercube",
    "random_regular",
    "erdos_renyi_connected",
    "barbell",
    "lollipop",
    "ring_of_cliques",
    "two_cliques_bridge",
    "component_mixture",
    "random_orientation",
    "WORKLOADS",
    "make_workload",
]


def _empty(n: int) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    return graph


def line_graph(n: int) -> nx.Graph:
    """Path on ``n`` nodes — the paper's canonical worst case (§1).

    Conductance ``Θ(1/n)`` and diameter ``n - 1``; the introduction's lower
    bound argument ("if the nodes initially form a line…") is about exactly
    this topology.
    """
    graph = _empty(n)
    graph.add_edges_from((i, i + 1) for i in range(n - 1))
    return graph


def cycle_graph(n: int) -> nx.Graph:
    """Cycle on ``n`` nodes: conductance ``Θ(1/n)``, diameter ``⌊n/2⌋``."""
    if n < 3:
        return line_graph(n)
    graph = _empty(n)
    graph.add_edges_from((i, (i + 1) % n) for i in range(n))
    return graph


def star_graph(n: int) -> nx.Graph:
    """Star with centre ``0``: diameter 2 but maximum degree ``n - 1``."""
    graph = _empty(n)
    graph.add_edges_from((0, i) for i in range(1, n))
    return graph


def complete_graph(n: int) -> nx.Graph:
    """Clique on ``n`` nodes (constant conductance reference point)."""
    graph = _empty(n)
    graph.add_edges_from((i, j) for i in range(n) for j in range(i + 1, n))
    return graph


def binary_tree(n: int) -> nx.Graph:
    """Complete binary tree shape on ``n`` nodes (heap numbering)."""
    graph = _empty(n)
    graph.add_edges_from((child, (child - 1) // 2) for child in range(1, n))
    return graph


def random_tree(n: int, rng: np.random.Generator) -> nx.Graph:
    """Uniform-attachment random tree: node ``i`` attaches to a random
    earlier node.  Expected depth ``Θ(log n)`` but degree up to ``Θ(log n)``.
    """
    graph = _empty(n)
    for child in range(1, n):
        parent = int(rng.integers(0, child))
        graph.add_edge(child, parent)
    return graph


def caterpillar(n: int, leg_every: int = 2) -> nx.Graph:
    """Caterpillar: a spine path with a leaf hung off every ``leg_every``-th
    spine node.  Line-like conductance with degree-3 spine nodes.
    """
    spine_len = max(1, (n + 1) // 2) if leg_every == 2 else max(1, n - n // (leg_every + 1))
    graph = _empty(n)
    spine = list(range(spine_len))
    graph.add_edges_from((spine[i], spine[i + 1]) for i in range(len(spine) - 1))
    nxt = spine_len
    for i, s in enumerate(spine):
        if nxt >= n:
            break
        if i % leg_every == 0:
            graph.add_edge(s, nxt)
            nxt += 1
    # Attach any remaining nodes to the end of the spine to reach n nodes.
    while nxt < n:
        graph.add_edge(spine[-1], nxt)
        nxt += 1
    return graph


def double_star(n: int) -> nx.Graph:
    """Two stars joined by a bridge edge — a minimum cut of size one."""
    graph = _empty(n)
    half = n // 2
    graph.add_edges_from((0, i) for i in range(2, half))
    graph.add_edges_from((1, i) for i in range(half, n))
    graph.add_edge(0, 1)
    return graph


def grid_2d(rows: int, cols: int) -> nx.Graph:
    """``rows × cols`` grid: conductance ``Θ(1/√n)``."""
    graph = _empty(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


def torus_2d(rows: int, cols: int) -> nx.Graph:
    """``rows × cols`` torus (wrap-around grid); 4-regular when both ≥ 3."""
    graph = _empty(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            graph.add_edge(v, r * cols + (c + 1) % cols)
            graph.add_edge(v, ((r + 1) % rows) * cols + c)
    return graph


def hypercube(dim: int) -> nx.Graph:
    """``dim``-dimensional hypercube on ``2^dim`` nodes (a mild expander)."""
    n = 1 << dim
    graph = _empty(n)
    for v in range(n):
        for b in range(dim):
            u = v ^ (1 << b)
            if u > v:
                graph.add_edge(v, u)
    return graph


def random_regular(n: int, degree: int, rng: np.random.Generator, max_tries: int = 50) -> nx.Graph:
    """Random ``degree``-regular simple graph via the pairing model with
    double-edge-swap repair.

    The raw pairing model produces self-loops and parallel edges with
    probability ``1 - e^{-Θ(d²)}``, so instead of resampling (hopeless for
    ``d ≥ 5``) defective pairs are repaired by swapping with uniformly
    random good pairs — the standard configuration-model fix-up.  The
    result is ``degree``-regular, simple, connected (retrying the whole
    sample if the rare disconnected case occurs), and an expander w.h.p.
    """
    if n * degree % 2 != 0:
        raise ValueError("n * degree must be even for a regular graph")
    if degree >= n:
        raise ValueError("degree must be < n")
    for _ in range(max_tries):
        stubs = np.repeat(np.arange(n), degree)
        rng.shuffle(stubs)
        pairs: list[list[int]] = [
            [int(a), int(b)] for a, b in stubs.reshape(-1, 2)
        ]
        counts: dict[tuple[int, int], int] = {}

        def key_of(pair: list[int]) -> tuple[int, int]:
            return (min(pair), max(pair))

        for pair in pairs:
            counts[key_of(pair)] = counts.get(key_of(pair), 0) + 1

        def is_bad(pair: list[int]) -> bool:
            return pair[0] == pair[1] or counts[key_of(pair)] > 1

        repaired = True
        for idx in range(len(pairs)):
            attempts = 0
            while is_bad(pairs[idx]):
                attempts += 1
                if attempts > 200:
                    repaired = False
                    break
                other = int(rng.integers(0, len(pairs)))
                if other == idx:
                    continue
                a, b = pairs[idx]
                c, d = pairs[other]
                # Swap to (a, c), (b, d); require both results simple+new.
                if a == c or b == d:
                    continue
                new1, new2 = (min(a, c), max(a, c)), (min(b, d), max(b, d))
                if counts.get(new1, 0) or counts.get(new2, 0) or new1 == new2:
                    continue
                for old in (key_of(pairs[idx]), key_of(pairs[other])):
                    counts[old] -= 1
                    if counts[old] == 0:
                        del counts[old]
                pairs[idx] = [a, c]
                pairs[other] = [b, d]
                counts[new1] = counts.get(new1, 0) + 1
                counts[new2] = counts.get(new2, 0) + 1
            if not repaired:
                break
        if not repaired:
            continue
        graph = _empty(n)
        graph.add_edges_from(tuple(p) for p in pairs)
        if _bfs_connected(graph):
            return graph
    raise RuntimeError(f"failed to sample a connected {degree}-regular graph on {n} nodes")


def erdos_renyi_connected(
    n: int, avg_degree: float, rng: np.random.Generator, max_tries: int = 200
) -> nx.Graph:
    """Connected Erdős–Rényi graph with expected average degree ``avg_degree``.

    Resamples until connected, so ``avg_degree`` should be above the
    ``ln n`` connectivity threshold for large ``n``.
    """
    p = min(1.0, avg_degree / max(1, n - 1))
    rows_idx, cols_idx = np.triu_indices(n, k=1)
    for _ in range(max_tries):
        graph = _empty(n)
        mask = rng.random(rows_idx.shape[0]) < p
        graph.add_edges_from(
            zip(rows_idx[mask].tolist(), cols_idx[mask].tolist())
        )
        if _bfs_connected(graph):
            return graph
    raise RuntimeError(f"failed to sample a connected G({n}, {p}) graph")


def erdos_renyi_giant(
    n: int, avg_degree: float, rng: np.random.Generator
) -> nx.Graph:
    """Largest connected component of ``G(n, avg_degree/(n-1))``,
    relabelled to ``0 .. k-1``.

    Useful for sparse regimes (``avg_degree`` below the ``ln n``
    connectivity threshold but above 1) where a connected sample is
    unlikely but the giant component is a natural sparse workload.
    """
    p = min(1.0, avg_degree / max(1, n - 1))
    rows_idx, cols_idx = np.triu_indices(n, k=1)
    mask = rng.random(rows_idx.shape[0]) < p
    graph = _empty(n)
    graph.add_edges_from(zip(rows_idx[mask].tolist(), cols_idx[mask].tolist()))
    seen = np.zeros(n, dtype=bool)
    best: list[int] = []
    for start in range(n):
        if seen[start]:
            continue
        comp = [start]
        seen[start] = True
        stack = [start]
        while stack:
            v = stack.pop()
            for u in graph.neighbors(v):
                if not seen[u]:
                    seen[u] = True
                    comp.append(u)
                    stack.append(u)
        if len(comp) > len(best):
            best = comp
    mapping = {v: i for i, v in enumerate(sorted(best))}
    out = _empty(len(best))
    out.add_edges_from(
        (mapping[a], mapping[b]) for a, b in graph.edges if a in mapping and b in mapping
    )
    return out


def barbell(clique_size: int, path_len: int = 0) -> nx.Graph:
    """Two cliques of size ``clique_size`` joined by a path of ``path_len``
    interior nodes — conductance ``Θ(1/clique_size²)`` at the bridge.
    """
    n = 2 * clique_size + path_len
    graph = _empty(n)
    graph.add_edges_from(
        (i, j) for i in range(clique_size) for j in range(i + 1, clique_size)
    )
    offset = clique_size + path_len
    graph.add_edges_from(
        (offset + i, offset + j)
        for i in range(clique_size)
        for j in range(i + 1, clique_size)
    )
    chain = [clique_size - 1] + list(range(clique_size, clique_size + path_len)) + [offset]
    graph.add_edges_from(zip(chain, chain[1:]))
    return graph


def lollipop(clique_size: int, path_len: int) -> nx.Graph:
    """A clique with a path tail — classic slow-mixing example."""
    n = clique_size + path_len
    graph = _empty(n)
    graph.add_edges_from(
        (i, j) for i in range(clique_size) for j in range(i + 1, clique_size)
    )
    chain = [clique_size - 1] + list(range(clique_size, n))
    graph.add_edges_from(zip(chain, chain[1:]))
    return graph


def ring_of_cliques(num_cliques: int, clique_size: int) -> nx.Graph:
    """``num_cliques`` cliques arranged in a ring, adjacent cliques joined
    by a single edge.  Minimum cut 2, conductance ``Θ(1/(num_cliques ·
    clique_size))``.
    """
    n = num_cliques * clique_size
    graph = _empty(n)
    for c in range(num_cliques):
        base = c * clique_size
        graph.add_edges_from(
            (base + i, base + j)
            for i in range(clique_size)
            for j in range(i + 1, clique_size)
        )
        nxt = ((c + 1) % num_cliques) * clique_size
        graph.add_edge(base + clique_size - 1, nxt)
    return graph


def two_cliques_bridge(clique_size: int) -> nx.Graph:
    """Two cliques joined by a single bridge edge (minimum cut 1)."""
    return barbell(clique_size, path_len=0)


def component_mixture(
    component_specs: list[nx.Graph],
) -> tuple[nx.Graph, list[list[int]]]:
    """Disjoint union of the given graphs, relabelled to ``0 .. n-1``.

    Returns the combined graph and, for each input component, the list of
    node ids it occupies in the combined graph.  Used by the connected
    components experiments (Theorem 1.2), which need ground-truth
    membership.
    """
    graph = nx.Graph()
    memberships: list[list[int]] = []
    offset = 0
    for comp in component_specs:
        mapping = {v: v + offset for v in comp.nodes}
        graph.add_nodes_from(mapping.values())
        graph.add_edges_from((mapping[a], mapping[b]) for a, b in comp.edges)
        memberships.append(sorted(mapping.values()))
        offset += comp.number_of_nodes()
    return graph, memberships


def random_orientation(graph: nx.Graph, rng: np.random.Generator) -> nx.DiGraph:
    """Orient each undirected edge uniformly at random.

    The paper's input is a *directed* knowledge graph that is only weakly
    connected; orienting an undirected workload produces exactly that.  The
    algorithms begin by bidirecting the graph (each node introduces itself
    to its out-neighbours), so tests use this to exercise that first step.
    """
    directed = nx.DiGraph()
    directed.add_nodes_from(graph.nodes)
    for a, b in graph.edges:
        if rng.random() < 0.5:
            directed.add_edge(a, b)
        else:
            directed.add_edge(b, a)
    return directed


def _bfs_connected(graph: nx.Graph) -> bool:
    n = graph.number_of_nodes()
    if n == 0:
        return True
    seen = {0}
    stack = [0]
    while stack:
        v = stack.pop()
        for u in graph.neighbors(v):
            if u not in seen:
                seen.add(u)
                stack.append(u)
    return len(seen) == n


def _square_side(n: int) -> int:
    return max(2, int(math.isqrt(n)))


#: Named workload registry used by the experiment harness and benchmarks.
#: Each entry maps a workload name to ``fn(n, rng) -> nx.Graph``.
WORKLOADS = {
    "line": lambda n, rng: line_graph(n),
    "cycle": lambda n, rng: cycle_graph(n),
    "binary_tree": lambda n, rng: binary_tree(n),
    "random_tree": lambda n, rng: random_tree(n, rng),
    "grid": lambda n, rng: grid_2d(_square_side(n), _square_side(n)),
    "torus": lambda n, rng: torus_2d(_square_side(n), _square_side(n)),
    "barbell": lambda n, rng: barbell(max(3, n // 2)),
    "lollipop": lambda n, rng: lollipop(max(3, n // 2), max(1, n - max(3, n // 2))),
    "ring_of_cliques": lambda n, rng: ring_of_cliques(max(3, n // 8), 8),
    "random_regular_3": lambda n, rng: random_regular(n + (n % 2), 3, rng),
    "caterpillar": lambda n, rng: caterpillar(n),
    "double_star": lambda n, rng: double_star(n),
}


def make_workload(name: str, n: int, rng: np.random.Generator | None = None) -> nx.Graph:
    """Instantiate a named workload with approximately ``n`` nodes.

    Some workloads (grids, ring-of-cliques, …) round ``n`` to the nearest
    feasible size; callers should read ``graph.number_of_nodes()`` rather
    than assuming ``n`` was hit exactly.
    """
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(WORKLOADS)}")
    if rng is None:
        rng = np.random.default_rng(0)
    return WORKLOADS[name](n, rng)
