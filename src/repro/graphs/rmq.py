"""Sparse-table range min/max queries over static arrays.

The Tarjan–Vishkin biconnectivity algorithm needs, for every node ``v``,
the minimum (``low``) and maximum (``high``) of a per-node value over the
preorder interval of ``v``'s subtree.  In the hybrid model these are the
"subtree aggregates" of [19, Remark 8] / Lemma 4.12, computed over Euler
tour segments with pointer-jumping shortcuts in ``O(log n)`` rounds; the
sparse table is the sequential realisation of exactly those ``2^k``-span
shortcut aggregates (table row ``k`` = the weights of the ``2^k``
shortcut edges), so building it mirrors the distributed structure.

``O(n log n)`` preprocessing, ``O(1)`` per query.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SparseTable"]


class SparseTable:
    """Idempotent range queries (min or max) on a fixed array."""

    def __init__(self, values, op: str = "min") -> None:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("values must be one-dimensional")
        if op not in ("min", "max"):
            raise ValueError("op must be 'min' or 'max'")
        self.op = op
        self._fn = np.minimum if op == "min" else np.maximum
        n = values.shape[0]
        self._n = n
        levels = max(1, int(np.floor(np.log2(n))) + 1) if n else 1
        self._table = [values.copy()]
        for k in range(1, levels):
            span = 1 << k
            prev = self._table[-1]
            if n - span + 1 <= 0:
                break
            cur = self._fn(prev[: n - span + 1], prev[span // 2 : n - span // 2 + 1])
            self._table.append(cur)

    def query(self, lo: int, hi: int):
        """Aggregate of ``values[lo : hi]`` (half-open, non-empty)."""
        if not 0 <= lo < hi <= self._n:
            raise IndexError(f"invalid range [{lo}, {hi}) for n={self._n}")
        span = hi - lo
        k = span.bit_length() - 1
        row = self._table[k]
        return self._fn(row[lo], row[hi - (1 << k)])

    def query_many(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Columnar batch of :meth:`query`: one gather per table level.

        ``lo``/``hi`` are equal-shaped integer arrays of half-open,
        non-empty ranges; invalid ranges raise before anything is
        gathered (matching the scalar guard — no ``-1`` sentinel leaks
        through to a wrapped index, cf. the Euler-tour root contract in
        ``docs/contracts.md``).  Queries group by their span's level
        ``⌊log₂ span⌋``, so the cost is ``O(q + levels)`` vector ops.
        """
        lo = np.asarray(lo, dtype=np.int64)
        hi = np.asarray(hi, dtype=np.int64)
        if lo.shape != hi.shape:
            raise ValueError(f"shape mismatch: {lo.shape} vs {hi.shape}")
        out = np.empty(lo.shape[0], dtype=self._table[0].dtype)
        if lo.shape[0] == 0:
            return out
        if ((lo < 0) | (lo >= hi) | (hi > self._n)).any():
            raise IndexError(f"invalid range batch for n={self._n}")
        # frexp is exact on int-valued floats: level = floor(log2(span)).
        level = np.frexp((hi - lo).astype(np.float64))[1] - 1
        for k in np.unique(level).tolist():
            rows = np.flatnonzero(level == k)
            table = self._table[k]
            out[rows] = self._fn(
                table[lo[rows]], table[hi[rows] - (np.int64(1) << k)]
            )
        return out
