"""Runtime sanitizer: ``REPRO_SANITIZE=1`` arms engine-wide invariant checks.

The static analyzer (``python -m repro.analysis``) checks the engine's
determinism contracts at the source level; this module is the *runtime*
half of the same story.  Setting ``REPRO_SANITIZE=1`` arms, in one
switch:

- **delivery-tail asserts** (``repro.net.network._deliver_flat``):
  int64 dtype on every message lane entering the tail, ascending-sender
  emission on the SoA path, and a receiver-sorted postcondition on the
  grouped columns handed to protocol classes;
- **SoA column validation** (``repro.net.soa.DEBUG_VALIDATE`` — the
  pre-existing ``REPRO_DEBUG_SOA`` flag is still honoured, sanitize mode
  implies it): every ``SoAInbox.concat`` input must itself be
  receiver-sorted;
- **shard canaries** (``repro.net.shard.ShardPool``): the ``order``
  output lane is pre-poisoned and a guard slot placed past the round's
  extent, so shard workers writing outside their prefix-sum offsets —
  the write-overlap race class — fail the round loudly instead of
  silently misdelivering;
- **fault-hook validation**: an oblivious adversary hook must neither
  draw from the delivery RNG (it would shift every subsequent
  truncation lottery) nor mutate the sender/receiver columns it is
  shown.

Checks raise :class:`SanitizeError` (an ``AssertionError`` subclass, so
``pytest.raises(AssertionError)`` and plain asserts interoperate).  The
flag is read once at import; tests flip :data:`ENABLED` directly.

``docs/contracts.md`` maps each contract to its lint code and its
sanitizer check.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.envsource import env_flag

__all__ = [
    "ENABLED",
    "SanitizeError",
    "check_int64",
    "check_nondecreasing",
    "check_receiver_sorted",
    "rng_state",
]

#: Armed by ``REPRO_SANITIZE=1`` (any value other than empty/``0``).
ENABLED = env_flag("REPRO_SANITIZE", False)


class SanitizeError(AssertionError):
    """An armed runtime invariant failed."""


def check_int64(name: str, arr) -> None:
    """Lanes entering the delivery tail are int64 end to end (RL303's
    runtime twin): a narrowed lane silently wraps ids/payloads at scale."""
    if arr is not None and arr.dtype != np.int64:
        raise SanitizeError(
            f"sanitize: lane {name!r} has dtype {arr.dtype}, expected int64"
        )


def check_nondecreasing(name: str, arr) -> None:
    if arr.shape[0] > 1 and not bool(np.all(arr[1:] >= arr[:-1])):
        bad = int(np.argmax(arr[1:] < arr[:-1]))
        raise SanitizeError(
            f"sanitize: column {name!r} is not nondecreasing at index "
            f"{bad + 1} ({int(arr[bad])} -> {int(arr[bad + 1])})"
        )


def check_receiver_sorted(name: str, receivers) -> None:
    """The grouped columns handed to protocol classes are receiver-sorted;
    anything else makes per-receiver segments straddle groups."""
    check_nondecreasing(name, receivers)


def rng_state(rng) -> str:
    """A comparable snapshot of a Generator's bit-generator state.

    ``repr`` flattens the nested state dict (which may hold numpy arrays
    for counter-based generators) into something ``==``-comparable.
    """
    return repr(rng.bit_generator.state)
