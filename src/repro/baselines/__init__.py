"""Baseline algorithms the paper's construction is compared against.

- :mod:`repro.baselines.supernode_merge` — the Angluin-style grouping/
  merging approach used by all prior work (``O(log² n)`` rounds);
- :mod:`repro.baselines.pointer_jumping` — unbounded-communication
  pointer jumping (``O(log n)`` rounds but ``Θ(n)`` messages per node);
- :mod:`repro.baselines.flooding` — naive full-knowledge flooding.
"""

from repro.baselines.supernode_merge import MergePhase, SupernodeMergeResult, supernode_merge
from repro.baselines.pointer_jumping import PointerJumpingResult, pointer_jumping
from repro.baselines.flooding import FloodingResult, flooding

__all__ = [
    "MergePhase",
    "SupernodeMergeResult",
    "supernode_merge",
    "PointerJumpingResult",
    "pointer_jumping",
    "FloodingResult",
    "flooding",
]
