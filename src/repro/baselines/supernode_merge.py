"""Supernode-merging overlay construction — the prior-work baseline.

All previous algorithms for the overlay construction problem ([2, 4, 27,
28], discussed in §1 of the paper) follow the same high-level pattern
introduced by Angluin et al.: alternately *group* adjacent supernodes and
*merge* them, halving the supernode count per phase, until a single
supernode spans the graph.  The cost driver is that each phase must
coordinate within the supernodes' spanning trees (broadcast +
convergecast), which costs rounds proportional to the tree depth — and
depths grow as supernodes merge, giving the ``O(log² n)`` overall bound
that the paper's ``O(log n)`` algorithm beats.

This module implements a faithful round-accounted Borůvka-style variant:

- every supernode is a rooted tree of original nodes with an explicit
  parent structure (depths are *measured*, not assumed);
- in each phase every supernode selects the inter-supernode edge towards
  the smallest neighbouring label (deterministic, avoids merge cycles up
  to the standard star-contraction on the label graph);
- a phase is charged ``2·(max supernode depth) + 2`` rounds: one
  broadcast and one convergecast over the deepest tree plus coordination.

The output is a spanning tree of the input (the union of merge edges),
so the baseline is also differential-tested as a spanning-tree algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.analysis import adjacency_sets, is_connected
from repro.graphs.unionfind import UnionFind

__all__ = ["MergePhase", "SupernodeMergeResult", "supernode_merge"]


@dataclass
class MergePhase:
    """Statistics of one group-and-merge phase."""

    phase: int
    supernodes_before: int
    supernodes_after: int
    max_depth: int
    rounds_charged: int


@dataclass
class SupernodeMergeResult:
    """Outcome of the baseline construction."""

    tree_edges: set[tuple[int, int]]
    phases: list[MergePhase]
    total_rounds: int

    @property
    def num_phases(self) -> int:
        return len(self.phases)


def supernode_merge(graph) -> SupernodeMergeResult:
    """Run the supernode-merging baseline on a connected graph.

    Returns the merge spanning tree and the per-phase round ledger; the
    total is empirically ``Θ(log² n)`` on line-like inputs (measured by
    experiment E7).
    """
    adj = adjacency_sets(graph)
    n = len(adj)
    if n == 0:
        return SupernodeMergeResult(set(), [], 0)
    if not is_connected(adj):
        raise ValueError("supernode merging requires a connected graph")

    uf = UnionFind(n)
    labels = list(range(n))  # label of each supernode = min node id
    parent = np.arange(n, dtype=np.int64)  # intra-supernode tree structure
    tree_edges: set[tuple[int, int]] = set()
    phases: list[MergePhase] = []
    total_rounds = 0
    phase_no = 0

    def depth_of_trees() -> int:
        return max(_depth(parent, v) for v in range(n))

    while uf.num_sets > 1:
        phase_no += 1
        before = uf.num_sets
        # Each supernode picks its minimum-label neighbouring supernode.
        choice: dict[int, tuple[int, int, int]] = {}  # root -> (label, a, b)
        for v in range(n):
            rv = uf.find(v)
            for u in sorted(adj[v]):
                ru = uf.find(u)
                if ru == rv:
                    continue
                cand = (labels[ru], v, u)
                # Full-tuple compare: ties on label resolve by (v, u), not
                # by whichever neighbour a set happened to yield first.
                if rv not in choice or cand < choice[rv]:
                    choice[rv] = cand
        max_depth = depth_of_trees()
        # Merge along chosen edges, restricted to a matching: a supernode
        # participates in at most one merge per phase (merging a whole
        # chain in one phase would need unaccounted coordination rounds —
        # this restriction is what makes the baseline Θ(log² n)).
        pre_root = [uf.find(v) for v in range(n)]
        merged_this_phase: set[int] = set()
        for root, (_label, a, b) in sorted(choice.items()):
            target = pre_root[b]
            if root in merged_this_phase or target in merged_this_phase:
                continue
            if uf.find(a) == uf.find(b):
                continue
            merged_this_phase.add(root)
            merged_this_phase.add(target)
            _reroot(parent, a)
            parent[a] = b
            uf.union(a, b)
            tree_edges.add((min(a, b), max(a, b)))
        # Relabel merged supernodes by their minimum member label.
        groups = uf.groups()
        for root, members in groups.items():
            lbl = min(labels[m] for m in members)
            for m in members:
                labels[m] = lbl
        # Consolidation: prior-work algorithms rebuild every supernode
        # into a balanced structure after merging (this is the "price of
        # complexity" §1 mentions).  The phase is charged for broadcast +
        # convergecast over the *unconsolidated* merged trees plus the
        # consolidation itself, after which trees are balanced again.
        depth_mid = depth_of_trees()
        for members in groups.values():
            ordered = sorted(members)
            for rank, v in enumerate(ordered):
                parent[v] = ordered[(rank - 1) // 2] if rank else v
        rounds = 2 * max_depth + 2 * depth_mid + 2
        total_rounds += rounds
        phases.append(
            MergePhase(
                phase=phase_no,
                supernodes_before=before,
                supernodes_after=uf.num_sets,
                max_depth=max_depth,
                rounds_charged=rounds,
            )
        )
    return SupernodeMergeResult(
        tree_edges=tree_edges,
        phases=phases,
        total_rounds=total_rounds,
    )


def _depth(parent: np.ndarray, v: int) -> int:
    d = 0
    while parent[v] != v:
        v = int(parent[v])
        d += 1
    return d


def _reroot(parent: np.ndarray, new_root: int) -> None:
    """Reverse the parent pointers on the path from ``new_root`` to its
    current root (the standard re-rooting before hanging a tree below a
    merge edge)."""
    path = [new_root]
    while parent[path[-1]] != path[-1]:
        path.append(int(parent[path[-1]]))
    for child, above in zip(path[1:], path[:-1]):
        parent[child] = above
    parent[new_root] = new_root
    # After reversal new_root is the root; caller re-parents it.
