"""Pointer jumping — the unbounded-communication strawman.

§1.3 of the paper: *"if there was no bound on the communication a node can
carry out in each round, the diameter of the network can easily be reduced
to 1 by performing pointer jumping for O(log n) rounds.  However, this
would require each node to communicate Θ(n) messages in the worst case."*

This baseline quantifies exactly that trade-off for experiment E7: in
each round every node introduces all of its neighbours to one another
(the knowledge graph is squared), which halves the diameter but squares
the degrees.  We measure rounds to diameter 1 and the per-round message
load — the number of identifiers a node must send, which explodes to
``Θ(n)`` while the paper's algorithm stays at ``O(log n)``.

Adjacency is represented as Python-int bitsets so the quadratic knowledge
growth stays cheap to simulate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.analysis import adjacency_sets, is_connected

__all__ = ["PointerJumpingResult", "pointer_jumping"]


@dataclass
class PointerJumpingResult:
    """Round-by-round measurements of the knowledge-squaring process."""

    rounds: int
    max_messages_per_round: list[int]
    total_messages: int

    @property
    def peak_messages(self) -> int:
        """Largest per-node per-round message count (Θ(n) on a line)."""
        return max(self.max_messages_per_round, default=0)


def pointer_jumping(graph, max_rounds: int = 64) -> PointerJumpingResult:
    """Square the knowledge graph until it is a clique.

    A node with neighbour set ``N(v)`` sends, in one round, the identifier
    of every neighbour to every neighbour — ``|N(v)|²`` identifier
    messages — after which ``N(v)`` becomes ``N(N(v))``.  Rounds until the
    clique is ``⌈log₂ diam⌉``.
    """
    adj = adjacency_sets(graph)
    n = len(adj)
    if n == 0:
        return PointerJumpingResult(0, [], 0)
    if not is_connected(adj):
        raise ValueError("pointer jumping requires a connected graph")

    masks = [0] * n
    for v, neigh in enumerate(adj):
        for u in neigh:
            masks[v] |= 1 << u

    full = [(1 << n) - 1 & ~(1 << v) for v in range(n)]
    max_messages: list[int] = []
    total = 0
    rounds = 0
    while any(masks[v] != full[v] for v in range(n)) and rounds < max_rounds:
        rounds += 1
        peak = 0
        new_masks = list(masks)
        for v in range(n):
            deg = masks[v].bit_count()
            sent = deg * deg  # every neighbour introduced to every other
            peak = max(peak, sent)
            total += sent
            merged = masks[v]
            rest = masks[v]
            while rest:
                low = rest & -rest
                u = low.bit_length() - 1
                merged |= masks[u]
                rest ^= low
            new_masks[v] = merged & ~(1 << v)
        masks = new_masks
        max_messages.append(peak)
    return PointerJumpingResult(
        rounds=rounds,
        max_messages_per_round=max_messages,
        total_messages=total,
    )
