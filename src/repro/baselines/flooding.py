"""Full-knowledge flooding — the naive message-cost strawman.

Every node repeatedly forwards every identifier it knows over its original
edges until all nodes know all identifiers.  This takes ``diameter``
rounds (optimal in time for local-edge-only algorithms) but moves
``Θ(n · m)`` identifiers in total — the communication blow-up against
which both the paper's algorithm and the supernode baseline are compared
in experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.analysis import adjacency_sets, is_connected

__all__ = ["FloodingResult", "flooding"]


@dataclass
class FloodingResult:
    """Cost profile of flooding all identifiers to all nodes."""

    rounds: int
    max_messages_per_round: list[int]
    total_messages: int

    @property
    def peak_messages(self) -> int:
        return max(self.max_messages_per_round, default=0)


def flooding(graph, max_rounds: int = 10_000) -> FloodingResult:
    """Flood every identifier to every node over local edges.

    Each round a node forwards only identifiers it learned in the
    previous round (the standard no-redundancy flood), one message per
    (new identifier, incident edge) pair.
    """
    adj = adjacency_sets(graph)
    n = len(adj)
    if n == 0:
        return FloodingResult(0, [], 0)
    if not is_connected(adj):
        raise ValueError("flooding requires a connected graph")

    known = [1 << v for v in range(n)]
    fresh = [1 << v for v in range(n)]
    max_messages: list[int] = []
    total = 0
    rounds = 0
    target = (1 << n) - 1
    while any(k != target for k in known) and rounds < max_rounds:
        rounds += 1
        peak = 0
        incoming = [0] * n
        for v in range(n):
            if not fresh[v]:
                continue
            count = fresh[v].bit_count() * len(adj[v])
            peak = max(peak, count)
            total += count
            for u in adj[v]:
                incoming[u] |= fresh[v]
        for v in range(n):
            fresh[v] = incoming[v] & ~known[v]
            known[v] |= incoming[v]
        max_messages.append(peak)
    return FloodingResult(
        rounds=rounds,
        max_messages_per_round=max_messages,
        total_messages=total,
    )
