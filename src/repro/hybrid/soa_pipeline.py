"""Columnar §4 pipeline: SoA spanner → degree reduction → hybrid overlay.

The per-node hybrid pipeline (:mod:`repro.hybrid.spanner` →
:mod:`repro.hybrid.degree_reduction` → :mod:`repro.hybrid.overlay` →
:mod:`repro.hybrid.components`) keeps its state in ``list[set]`` /
``dict`` structures and pays one Python operation per (node, neighbour,
round) — which caps churn-rebuild loops at small ``n``.  This module is
the structure-of-arrays port, the fourth protocol family on the SoA tier
after rooting, the expander, and the synchroniser:

- the Elkin–Neiman broadcast runs as a real :class:`SoASpannerClass`
  population on :class:`~repro.net.network.SyncNetwork` — the emitted
  ``(source, value)`` columns travel through the exact same
  ``_deliver_flat`` tail as every other tier, and the "heard" maps of all
  nodes live in one flat ``(node, source, value, predecessor)`` table
  merged with segment reductions;
- degree reduction, the benign preparation, the BFS/flooding tail, and
  the Theorem 4.1 well-forming (batched child–sibling conversion, forest
  Euler tours positioned by one combined pointer-jumping ranking, heap
  writeback — :func:`repro.hybrid.components.well_formed_forest_columns`)
  are pure column transforms (lexsort + ``reduceat``);
- the evolutions reuse :class:`~repro.hybrid.overlay.HybridExpanderBuilder`
  (already array-native) with a :class:`SoAHybridLedger` injected so the
  token-congestion accounting stays columnar end to end.

Everything here is **bit-for-bit** equal to the per-node path under a
shared seed: the spanner draws the identical ``rng.exponential`` column,
the broadcast's max/tie-break discipline matches the per-node ``max`` key
``(value, -source)``, strict-improvement merging reproduces the per-node
"first arrival wins ties" rule, and the overlay consumes the generator in
the identical order.  ``tests/hybrid/test_soa_pipeline.py`` pins the
equality (edge sets, degrees, ledgers, labels, parents) over a seed
matrix, and ``benchmarks/bench_s5_hybrid_scaling.py`` measures the
speedup with a hard assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.bfs import BFSForest
from repro.graphs.portgraph import PortGraph
from repro.net.batch import KINDS, MessageBatch
from repro.net.hybrid import HybridLedger
from repro.net.network import CapacityPolicy, SyncNetwork
from repro.net.soa import SoAInbox, SoAProtocolClass

__all__ = [
    "CSRAdjacency",
    "SoAHybridLedger",
    "SoASpannerClass",
    "SpannerColumns",
    "build_spanner_soa",
    "ReducedColumns",
    "reduce_degree_soa",
    "BaseEdgeColumns",
    "build_hybrid_overlay_soa",
    "flood_min_ids_columns",
    "distributed_bfs_columns",
    "build_bfs_forest_soa",
    "connected_components_hybrid_soa",
]

_EMPTY = np.empty(0, dtype=np.int64)


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values (sort + run-length dedup).

    ``np.unique`` routes int64 columns through a hash table; for the
    edge-key columns here the plain sort is measurably faster and the
    sortedness is needed downstream anyway.
    """
    if values.shape[0] == 0:
        return values
    values = np.sort(values)
    keep = np.concatenate([[True], values[1:] != values[:-1]])
    return values[keep]


# ----------------------------------------------------------------------
# Columnar adjacency
# ----------------------------------------------------------------------
@dataclass
class CSRAdjacency:
    """Simple-graph adjacency as CSR columns (both directions present).

    ``indices[indptr[v]:indptr[v + 1]]`` are ``v``'s neighbours sorted
    ascending — the columnar replacement for ``list[set[int]]``.
    """

    indptr: np.ndarray
    indices: np.ndarray

    @property
    def n(self) -> int:
        return int(self.indptr.shape[0] - 1)

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def max_degree(self) -> int:
        return int(self.degrees().max(initial=0))

    @classmethod
    def from_edges(cls, n: int, a: np.ndarray, b: np.ndarray) -> "CSRAdjacency":
        """CSR from undirected edge columns (self-loops and duplicate
        pairs removed)."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        keep = a != b
        a, b = a[keep], b[keep]
        src = np.concatenate([a, b])
        dst = np.concatenate([b, a])
        key = _sorted_unique(src * np.int64(n) + dst)
        src = key // n
        dst = key % n
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        return cls(indptr=indptr, indices=dst)

    @classmethod
    def from_graph(cls, graph) -> "CSRAdjacency":
        """Normalise any graph the per-node path accepts into CSR columns.

        :class:`~repro.graphs.portgraph.PortGraph` inputs are converted
        with one vectorized pass over the port matrix; everything else
        falls back through
        :func:`repro.graphs.analysis.adjacency_sets`.
        """
        if isinstance(graph, CSRAdjacency):
            return graph
        if isinstance(graph, PortGraph):
            n, delta = graph.ports.shape
            src = np.repeat(np.arange(n, dtype=np.int64), delta)
            dst = graph.ports.reshape(-1)
            return cls.from_edges(n, src, dst)
        from repro.graphs.analysis import adjacency_sets

        adj = adjacency_sets(graph)
        n = len(adj)
        counts = np.fromiter((len(s) for s in adj), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for v, neigh in enumerate(adj):
            indices[indptr[v] : indptr[v + 1]] = sorted(neigh)
        return cls(indptr=indptr, indices=indices)

    def induced_by(self, alive: np.ndarray) -> "CSRAdjacency":
        """Subgraph induced by the ``alive`` mask, relabelled to
        ``0..alive.sum()-1`` (position among the survivors).

        The one survivor-extraction used by both churn-rebuild entry
        points (:func:`repro.graphs.churn.rebuild_survivor_overlay` and
        :func:`repro.scenarios.runner.run_churn_rebuild_scenario`), so
        the kill-set choice is the only thing that differs between them.
        """
        src = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        dst = self.indices
        keep = (dst > src) & alive[src] & alive[dst]
        relabel = np.cumsum(alive, dtype=np.int64) - 1
        return CSRAdjacency.from_edges(
            int(alive.sum()), relabel[src[keep]], relabel[dst[keep]]
        )

    def neighbor_gather(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(senders, targets)``: every (node, neighbour) pair for the
        given nodes, node order preserved (the multi-range CSR gather)."""
        counts = self.indptr[nodes + 1] - self.indptr[nodes]
        total = int(counts.sum())
        if total == 0:
            return _EMPTY, _EMPTY
        ends = np.cumsum(counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
        targets = self.indices[np.repeat(self.indptr[nodes], counts) + offsets]
        return np.repeat(nodes, counts), targets

    def to_sets(self) -> list[set[int]]:
        """Materialise ``list[set]`` adjacency (test/debug interop)."""
        return [
            set(self.indices[self.indptr[v] : self.indptr[v + 1]].tolist())
            for v in range(self.n)
        ]


# ----------------------------------------------------------------------
# Columnar ledger
# ----------------------------------------------------------------------
class SoAHybridLedger:
    """Columnar :class:`~repro.net.hybrid.HybridLedger` counterpart.

    Charges accumulate in parallel int64 columns (amortised-doubling
    append) instead of a list of tuples, so per-evolution accounting at
    scale costs O(1) Python work per phase and the aggregate reductions
    (:attr:`total_rounds`, :attr:`max_global_capacity`) are single numpy
    reductions.  The :attr:`phases` view, :meth:`merge`, and
    :meth:`summary` match :class:`HybridLedger` exactly, so the two are
    interchangeable everywhere a ledger is consumed (and
    ``summary()``-equal for matched runs — the S5 equivalence bar).
    """

    __slots__ = ("_names", "_cols", "_len")

    def __init__(self) -> None:
        self._names: list[str] = []
        self._cols = np.zeros((3, 8), dtype=np.int64)
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def charge(
        self,
        name: str,
        local_rounds: int = 0,
        global_rounds: int = 0,
        global_capacity: int = 0,
    ) -> None:
        """Record a phase's communication cost (HybridLedger contract)."""
        if min(local_rounds, global_rounds, global_capacity) < 0:
            raise ValueError("charges must be non-negative")
        if self._len == self._cols.shape[1]:
            grown = np.zeros((3, 2 * self._cols.shape[1]), dtype=np.int64)
            grown[:, : self._len] = self._cols
            self._cols = grown
        self._cols[:, self._len] = (local_rounds, global_rounds, global_capacity)
        self._names.append(name)
        self._len += 1

    def merge(self, other, prefix: str = "") -> None:
        """Absorb another ledger's phases (columnar or per-node)."""
        for name, lr, gr, gc in other.phases:
            self.charge(f"{prefix}{name}", lr, gr, gc)

    @property
    def phases(self) -> list[tuple[str, int, int, int]]:
        cols = self._cols[:, : self._len]
        return [
            (name, int(cols[0, i]), int(cols[1, i]), int(cols[2, i]))
            for i, name in enumerate(self._names)
        ]

    @property
    def total_rounds(self) -> int:
        cols = self._cols[:, : self._len]
        if self._len == 0:
            return 0
        return int(np.maximum(cols[0], cols[1]).sum())

    @property
    def max_global_capacity(self) -> int:
        if self._len == 0:
            return 0
        return int(self._cols[2, : self._len].max())

    def summary(self) -> dict[str, int]:
        return {
            "phases": self._len,
            "total_rounds": self.total_rounds,
            "max_global_capacity": self.max_global_capacity,
        }

    def to_ledger(self) -> HybridLedger:
        """Materialise a plain :class:`HybridLedger` (interop)."""
        ledger = HybridLedger()
        ledger.merge(self)
        return ledger


# ----------------------------------------------------------------------
# Segment helpers (shared by the broadcast and the finalisation)
# ----------------------------------------------------------------------
def _segment_starts(keys: np.ndarray) -> np.ndarray:
    """Start offsets of equal-key runs in a sorted key column."""
    if keys.shape[0] == 0:
        return _EMPTY
    return np.flatnonzero(np.concatenate([[True], keys[1:] != keys[:-1]]))


def _first_max_per_segment(
    values: np.ndarray, starts: np.ndarray
) -> np.ndarray:
    """Row index of the first maximum of each segment.

    Rows within a segment keep their column order, so "first maximum"
    realises the per-node tie-breaks: smallest source for the broadcast
    argmax (rows are source-sorted) and earliest arrival for merges (rows
    are arrival-ordered).
    """
    m = values.shape[0]
    seg_id = np.zeros(m, dtype=np.int64)
    seg_id[starts[1:]] = 1
    seg_id = np.cumsum(seg_id)
    maxima = np.maximum.reduceat(values, starts)
    candidates = np.where(values == maxima[seg_id], np.arange(m, dtype=np.int64), m)
    return np.minimum.reduceat(candidates, starts)


# ----------------------------------------------------------------------
# SoA spanner (Elkin–Neiman broadcast as a protocol-class population)
# ----------------------------------------------------------------------
class SoASpannerClass(SoAProtocolClass):
    """All nodes of the truncated Elkin–Neiman broadcast (§4.2 step 1).

    State is one flat *heard table* — parallel columns ``(node, source,
    value, predecessor)`` sorted by ``(node, source)`` — replacing the
    per-node ``dict`` maps.  Each round the population:

    1. merges the delivered :class:`~repro.net.soa.SoAInbox` (payload =
       source id, second lane = the IEEE-754 bits of the value; the
       arriving value is the sender's stored value minus one) — strict
       improvement only, earliest arrival winning ties, exactly the
       per-node update rule;
    2. emits, per node with a non-empty heard set, the current maximiser
       ``(value, smallest source)`` to every neighbour — senders ascending,
       the canonical SoA emission order.

    Values travel bit-exactly (float64 ↔ int64 view), so the broadcast is
    bit-for-bit the per-node one.
    """

    KIND = "spanner"

    def __init__(self, adj: CSRAdjacency, shifts: np.ndarray, rounds: int) -> None:
        super().__init__(adj.n)
        self.adj = adj
        self.rounds = rounds
        self._emitted = 0
        seeded = np.flatnonzero(shifts > -math.inf)
        # Heard table sorted by the combined key node·n + source.
        self.h_key = seeded * np.int64(self.n) + seeded
        self.h_val = shifts[seeded].astype(np.float64, copy=True)
        self.h_pred = seeded.copy()
        # Incrementally tracked per-node argmax (value, then smallest
        # source) — heard values only ever improve, so the running
        # maximum is exact and emission never rescans the table.
        self.best_val = np.full(adj.n, -math.inf)
        self.best_src = np.full(adj.n, -1, dtype=np.int64)
        self.best_val[seeded] = self.h_val
        self.best_src[seeded] = seeded
        # Last broadcast maximiser per node (dirty-bit emission).
        self._sent_val = np.full(adj.n, -math.inf)
        self._sent_src = np.full(adj.n, -1, dtype=np.int64)

    @property
    def h_node(self) -> np.ndarray:
        return self.h_key // np.int64(self.n)

    @property
    def h_src(self) -> np.ndarray:
        return self.h_key % np.int64(self.n)

    # -- heard-table operations ----------------------------------------
    def _merge_inbox(self, inbox: SoAInbox) -> None:
        if len(inbox) == 0:
            return
        a_node = inbox.receivers
        a_src = inbox.payloads
        a_val = inbox.payloads2.view(np.float64) - 1.0
        a_pred = inbox.senders
        # Reduce the round's arrivals per (node, source): max value, tie →
        # earliest arrival.  The inbox is receiver-sorted with canonical
        # (sender-ascending) order inside each group, and the stable
        # argsort keeps it, so "first row of the segment" is the smallest
        # sender — the per-node "first arrival wins ties" rule.
        key = a_node * np.int64(self.n) + a_src
        order = np.argsort(key, kind="stable")
        key, a_val, a_pred = key[order], a_val[order], a_pred[order]
        starts = _segment_starts(key)
        pick = _first_max_per_segment(a_val, starts)
        key, a_val, a_pred = key[pick], a_val[pick], a_pred[pick]
        nodes = key // np.int64(self.n)

        # Fold the round's candidates into the running per-node argmax.
        # Raw (pre-merge) candidates are safe: a candidate that loses to
        # an existing entry carries a value ≤ that entry ≤ the tracked
        # best, so it can only win the comparison when it genuinely ties
        # the best with a smaller source — exactly the recomputed
        # tie-break.
        node_starts = _segment_starts(nodes)
        best_rows = _first_max_per_segment(a_val, node_starts)
        c_node = nodes[node_starts]
        c_src = key[best_rows] % np.int64(self.n)
        c_val = a_val[best_rows]
        better = (c_val > self.best_val[c_node]) | (
            (c_val == self.best_val[c_node]) & (c_src < self.best_src[c_node])
        )
        upd = np.flatnonzero(better)
        if upd.shape[0]:
            self.best_val[c_node[upd]] = c_val[upd]
            self.best_src[c_node[upd]] = c_src[upd]

        # Drop every arrival below the edge threshold ``best(v) - 1``.
        # ``best`` only grows and a row's stored value only grows towards
        # a fixed arrival stream, so a sub-threshold entry can never
        # qualify for step 3 again — skipping it (and later pruning the
        # table against the grown threshold) leaves the final edge
        # selection bit-for-bit unchanged while keeping the table at
        # O(sources within 1 of the max) per node instead of
        # O(degree · rounds).  The filter runs *after* the best update:
        # a round's own arrivals may raise the threshold.
        keep = np.flatnonzero(a_val >= self.best_val[nodes] - 1.0)
        if keep.shape[0] != key.shape[0]:
            key, a_val, a_pred = key[keep], a_val[keep], a_pred[keep]

        # Merge into the key-sorted heard table without re-sorting it:
        # matched keys improve in place only when strictly greater (the
        # per-node ``arriving > prev`` rule), new keys are inserted at
        # their sorted positions.
        h = self.h_key.shape[0]
        pos = np.searchsorted(self.h_key, key)
        if h:
            matched = (pos < h) & (self.h_key[np.minimum(pos, h - 1)] == key)
        else:
            matched = np.zeros(key.shape[0], dtype=bool)
        improve = np.flatnonzero(matched & (a_val > self.h_val[np.minimum(pos, max(h - 1, 0))]))
        if improve.shape[0]:
            rows = pos[improve]
            self.h_val[rows] = a_val[improve]
            self.h_pred[rows] = a_pred[improve]
        fresh = np.flatnonzero(~matched)
        if fresh.shape[0]:
            at = pos[fresh]
            self.h_key = np.insert(self.h_key, at, key[fresh])
            self.h_val = np.insert(self.h_val, at, a_val[fresh])
            self.h_pred = np.insert(self.h_pred, at, a_pred[fresh])

        # Prune table rows the grown threshold has disqualified.
        alive = np.flatnonzero(self.h_val >= self.best_val[self.h_node] - 1.0)
        if alive.shape[0] != self.h_key.shape[0]:
            self.h_key = self.h_key[alive]
            self.h_val = self.h_val[alive]
            self.h_pred = self.h_pred[alive]

    def _emit(self) -> MessageBatch | None:
        # Dirty-bit broadcast: a node whose maximiser is unchanged since
        # its last emission would repeat the identical ``(source,
        # value − 1)`` message, and the strict-improvement merge is
        # idempotent under repeats — so suppressing it leaves every heard
        # table (hence the spanner) bit-for-bit unchanged while the
        # message volume collapses once the wave has passed.  The
        # per-node oracle re-sends plainly each round; tests pin the
        # outputs equal, not the traffic.
        nodes = np.flatnonzero(
            (self.best_val > -math.inf)
            & (
                (self.best_val != self._sent_val)
                | (self.best_src != self._sent_src)
            )
        )
        if nodes.shape[0] == 0:
            return None
        self._sent_val[nodes] = self.best_val[nodes]
        self._sent_src[nodes] = self.best_src[nodes]
        senders, receivers = self.adj.neighbor_gather(nodes)
        if receivers.shape[0] == 0:
            return None
        counts = self.adj.indptr[nodes + 1] - self.adj.indptr[nodes]
        return MessageBatch(
            senders=senders,
            receivers=receivers,
            kinds=KINDS.code(self.KIND),
            payloads=np.repeat(self.best_src[nodes], counts),
            payloads2=np.repeat(self.best_val[nodes].view(np.int64), counts),
        )

    # -- protocol-class contract ---------------------------------------
    def on_round_soa(self, round_no: int, inbox: SoAInbox) -> MessageBatch | None:
        self._merge_inbox(inbox)
        if self._emitted >= self.rounds:
            return None
        self._emitted += 1
        return self._emit()

    def is_idle(self) -> bool:
        return self._emitted >= self.rounds


@dataclass
class SpannerColumns:
    """Directed spanner ``S(G)`` as flat edge columns.

    ``src → dst`` rows are unique and lexsorted — the columnar counterpart
    of :class:`~repro.hybrid.spanner.SpannerResult`'s ``list[set]``
    (``to_result`` materialises that form for interop/tests).
    """

    n: int
    src: np.ndarray
    dst: np.ndarray
    active: np.ndarray
    added_all: np.ndarray
    shifts: np.ndarray
    rounds: int

    def max_outdegree(self) -> int:
        if self.src.shape[0] == 0:
            return 0
        return int(np.bincount(self.src, minlength=self.n).max())

    def num_directed_edges(self) -> int:
        return int(self.src.shape[0])

    def to_result(self):
        from repro.hybrid.spanner import SpannerResult

        out_edges: list[set[int]] = [set() for _ in range(self.n)]
        for v, u in zip(self.src.tolist(), self.dst.tolist()):
            out_edges[v].add(u)
        return SpannerResult(
            out_edges=out_edges,
            active=self.active.copy(),
            added_all=self.added_all.copy(),
            shifts=self.shifts.copy(),
            rounds=self.rounds,
        )


def build_spanner_soa(
    graph,
    rng: np.random.Generator,
    component_bound: int | None = None,
    degree_threshold: int | None = None,
    ctx=None,
) -> SpannerColumns:
    """Columnar Elkin–Neiman spanner, bit-for-bit equal to
    :func:`repro.hybrid.spanner.build_spanner` under a shared seed.

    The broadcast itself runs as a :class:`SoASpannerClass` population on
    :class:`~repro.net.network.SyncNetwork` (unbounded capacity — CONGEST
    local edges carry one message per edge per round and never consult
    the delivery RNG, so the only draw is the shifts column, identical to
    the per-node path's).
    """
    adj = CSRAdjacency.from_graph(graph)
    n = adj.n
    if n == 0:
        return SpannerColumns(
            n=0,
            src=_EMPTY,
            dst=_EMPTY,
            active=np.zeros(0, dtype=bool),
            added_all=np.zeros(0, dtype=bool),
            shifts=np.zeros(0),
            rounds=0,
        )
    m = component_bound if component_bound is not None else n
    m = max(2, m)
    if degree_threshold is None:
        degree_threshold = max(8, math.ceil(2 * math.log2(max(2, n))))
    limit = 2.0 * math.log(m)
    rounds = int(limit) + 1

    shifts = rng.exponential(scale=2.0, size=n)
    shifts[shifts > limit] = -math.inf

    population = SoASpannerClass(adj, shifts, rounds)
    network = SyncNetwork(
        population,
        CapacityPolicy.unbounded(),
        np.random.default_rng(0),  # never consumed: no capacity truncation
        ctx=ctx,
    )
    for _ in range(rounds + 1):
        network.run_round()

    # ---- finalisation (§4.2 steps 3–4) -------------------------------
    h_node, h_val = population.h_node, population.h_val
    best = np.full(n, -math.inf)
    starts = _segment_starts(h_node)
    if starts.shape[0]:
        best[h_node[starts]] = np.maximum.reduceat(h_val, starts)
    active = best >= 0.0
    degrees = adj.degrees()
    added_all = (degrees < degree_threshold) | ~active
    # Active nodes adopt the predecessor of every source within 1 of
    # their maximum; fallback nodes adopt every incident edge.
    sel = active[h_node] & (h_val >= best[h_node] - 1.0) & (population.h_pred != h_node)
    pred_src = h_node[sel]
    pred_dst = population.h_pred[sel]
    fb_nodes = np.flatnonzero(added_all)
    fb_src, fb_dst = adj.neighbor_gather(fb_nodes)
    key = _sorted_unique(
        np.concatenate([pred_src, fb_src]) * np.int64(n)
        + np.concatenate([pred_dst, fb_dst])
    )
    return SpannerColumns(
        n=n,
        src=key // n,
        dst=key % n,
        active=active,
        added_all=added_all,
        shifts=shifts,
        rounds=rounds,
    )


# ----------------------------------------------------------------------
# Columnar degree reduction (§4.2 step 2)
# ----------------------------------------------------------------------
@dataclass
class ReducedColumns:
    """The bounded-degree graph ``H`` as flat columns with provenance.

    ``edge_a < edge_b`` rows are unique and lexsorted; ``centre[i]`` is
    the delegation centre of the chain edge (``-1`` for genuine spanner
    edges — the columnar encoding of ``None``).  ``adj`` is the CSR view
    the overlay preparation and equivalence tests consume.
    """

    edge_a: np.ndarray
    edge_b: np.ndarray
    centre: np.ndarray
    adj: CSRAdjacency
    rounds: int = 2

    @property
    def n(self) -> int:
        return self.adj.n

    def max_degree(self) -> int:
        return self.adj.max_degree()

    def expand_edge(self, a: int, b: int) -> list[tuple[int, int]]:
        """Oriented ``G``-edge path realising the ``H``-edge ``a → b``
        (columnar lookup; matches :meth:`ReducedGraph.expand_edge`)."""
        lo, hi = (a, b) if a < b else (b, a)
        key = lo * np.int64(self.n) + hi
        keys = self.edge_a * np.int64(self.n) + self.edge_b
        pos = int(np.searchsorted(keys, key))
        if pos >= keys.shape[0] or keys[pos] != key:
            return [(a, b)]
        centre = int(self.centre[pos])
        if centre < 0:
            return [(a, b)]
        return [(a, centre), (centre, b)]

    def to_reduced(self):
        from repro.hybrid.degree_reduction import ReducedGraph

        delegation = {
            frozenset((int(a), int(b))): (None if c < 0 else int(c))
            for a, b, c in zip(
                self.edge_a.tolist(), self.edge_b.tolist(), self.centre.tolist()
            )
        }
        return ReducedGraph(
            adj=self.adj.to_sets(), delegation=delegation, rounds=self.rounds
        )


def reduce_degree_soa(spanner: SpannerColumns) -> ReducedColumns:
    """Columnar edge delegation, equal to
    :func:`repro.hybrid.degree_reduction.reduce_degree`.

    Per delegation centre ``v`` (in-neighbours ``w₁ < … < w_k``): the
    smallest in-neighbour keeps ``{v, w₁}`` (genuine, centre ``-1``) and
    consecutive in-neighbours chain through ``v``.  A genuine edge always
    wins over a chain realisation of the same pair, and among chain
    centres the smallest wins — exactly the per-node dict's insertion
    discipline (``None`` unconditional, first-wins otherwise, outer loop
    ascending), realised here as a min-reduction because ``-1`` sorts
    below every centre id.
    """
    n = spanner.n
    # In-edge view sorted by (dst, src): rows are already unique.
    order = np.lexsort((spanner.src, spanner.dst))
    iv = spanner.dst[order]
    iw = spanner.src[order]
    starts = _segment_starts(iv)
    is_start = np.zeros(iv.shape[0], dtype=bool)
    is_start[starts] = True

    kept_a, kept_b = iv[starts], iw[starts]  # {v, w1}, genuine
    chain_rows = np.flatnonzero(~is_start)
    chain_a = iw[chain_rows - 1]
    chain_b = iw[chain_rows]
    chain_c = iv[chain_rows]

    a = np.concatenate([kept_a, chain_a])
    b = np.concatenate([kept_b, chain_b])
    centre = np.concatenate(
        [np.full(kept_a.shape[0], -1, dtype=np.int64), chain_c]
    )
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    key = lo * np.int64(n) + hi
    order = np.lexsort((centre, key))
    key_s, centre_s = key[order], centre[order]
    starts = _segment_starts(key_s)
    edge_key = key_s[starts]
    return ReducedColumns(
        edge_a=edge_key // n,
        edge_b=edge_key % n,
        centre=centre_s[starts],
        adj=CSRAdjacency.from_edges(n, edge_key // n, edge_key % n)
        if edge_key.shape[0]
        else CSRAdjacency(
            indptr=np.zeros(n + 1, dtype=np.int64), indices=_EMPTY
        ),
    )


# ----------------------------------------------------------------------
# Columnar hybrid overlay (Theorem 4.1 preparation + builder reuse)
# ----------------------------------------------------------------------
class BaseEdgeColumns:
    """Lazy ``list[BaseEdge]`` view over flat base-edge columns.

    The columnar preparation's counterpart of the per-node registry: the
    ``(u, v)`` columns already sit in the per-node emission order (node
    ascending, partner ascending, ``copies`` consecutive repeats), so
    materialising :class:`~repro.core.benign.BaseEdge` objects happens
    only when something actually indexes the registry (the spanning-tree
    unwinding, tests) — never on the build path.
    """

    __slots__ = ("us", "vs")

    def __init__(self, us: np.ndarray, vs: np.ndarray) -> None:
        self.us = us
        self.vs = vs

    def __len__(self) -> int:
        return int(self.us.shape[0])

    def __getitem__(self, idx):
        from repro.core.benign import BaseEdge

        if isinstance(idx, slice):
            return [self[i] for i in range(*idx.indices(len(self)))]
        i = int(idx)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(f"base edge {idx} out of range for {len(self)}")
        u, v = int(self.us[i]), int(self.vs[i])
        return BaseEdge(u=u, v=v, source=(u, v))

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]


def _benign_base_soa(
    reduced: ReducedColumns, delta: int
) -> tuple[PortGraph, BaseEdgeColumns]:
    """Columnar hybrid preparation (copy edges into the port slack,
    self-loops to Δ) — the vectorized twin of the per-node
    ``_benign_from_bounded_degree`` (identical edge order: node
    ascending, partner ascending, copies consecutive)."""
    max_degree = reduced.max_degree()
    copies = max(1, delta // (4 * max(1, max_degree)))
    ends_a = np.repeat(reduced.edge_a, copies)
    ends_b = np.repeat(reduced.edge_b, copies)
    graph = PortGraph.from_edge_multiset(
        n=reduced.n, delta=delta, endpoints_a=ends_a, endpoints_b=ends_b
    )
    return graph, BaseEdgeColumns(ends_a, ends_b)


def build_hybrid_overlay_soa(
    reduced: ReducedColumns,
    rng: np.random.Generator | None = None,
    params=None,
    record_traces: bool = False,
    m_bound: int | None = None,
    gap_threshold: float | None = None,
    track_gap: bool = False,
):
    """Columnar Theorem 4.1: hybrid overlay on a reduced graph.

    Bit-for-bit equal to
    :func:`repro.hybrid.overlay.build_hybrid_overlay` on the same input
    under a shared seed — the preparation is a pure column transform and
    the evolutions reuse the (already array-native)
    :class:`~repro.hybrid.overlay.HybridExpanderBuilder`, with a
    :class:`SoAHybridLedger` accumulating the per-evolution
    token-congestion charges columnarly.
    """
    from repro.hybrid.overlay import (
        HybridExpanderBuilder,
        HybridOverlayParams,
        HybridOverlayResult,
    )

    if rng is None:
        rng = np.random.default_rng(0)
    n = reduced.n
    max_degree = reduced.max_degree()
    if params is None:
        params = HybridOverlayParams.recommended(n, max_degree, m_bound=m_bound)
    if max_degree > params.delta // 2:
        raise ValueError(
            f"input degree {max_degree} exceeds delta/2 = {params.delta // 2}; "
            "reduce the degree first (repro.hybrid.degree_reduction)"
        )
    base, base_registry = _benign_base_soa(reduced, params.delta)
    builder = HybridExpanderBuilder(
        base, params, rng, record_traces=record_traces, ledger=SoAHybridLedger()
    )
    builder.run(gap_threshold=gap_threshold, track_gap=track_gap)
    return HybridOverlayResult(
        final_graph=builder.current,
        history=builder.history,
        levels=builder.levels,
        base_registry=base_registry,
        level_registries=builder.level_registries,
        params=params,
        ledger=builder.ledger,
    )


# ----------------------------------------------------------------------
# Columnar flooding + BFS tail
# ----------------------------------------------------------------------
def flood_min_ids_columns(adj: CSRAdjacency) -> tuple[np.ndarray, int]:
    """Columnar min-id flooding; identical ``(root_of, rounds)`` to
    :func:`repro.core.bfs.flood_min_ids` (the final no-change round is
    counted, as a synchronous network would need it for quiescence)."""
    n = adj.n
    best = np.arange(n, dtype=np.int64)
    rounds = 0
    has_neighbors = np.flatnonzero(np.diff(adj.indptr) > 0)
    if has_neighbors.shape[0] == 0:
        return best, 1 if n else 0
    starts = _segment_starts(
        np.repeat(has_neighbors, np.diff(adj.indptr)[has_neighbors])
    )
    while True:
        neigh_min = np.minimum.reduceat(best[adj.indices], starts)
        nxt = best.copy()
        nxt[has_neighbors] = np.minimum(nxt[has_neighbors], neigh_min)
        rounds += 1
        if np.array_equal(nxt, best):
            return best, rounds
        best = nxt


def distributed_bfs_columns(
    adj: CSRAdjacency, roots: list[int]
) -> tuple[np.ndarray, np.ndarray, int]:
    """Columnar level-synchronous BFS; identical output to
    :func:`repro.core.bfs.distributed_bfs` (smallest-id parent
    tie-break, rounds counted per frontier iteration)."""
    n = adj.n
    parent = np.full(n, -1, dtype=np.int64)
    depth = np.full(n, -1, dtype=np.int64)
    frontier = np.asarray(roots, dtype=np.int64)
    parent[frontier] = frontier
    depth[frontier] = 0
    rounds = 0
    while frontier.shape[0]:
        rounds += 1
        src, tgt = adj.neighbor_gather(frontier)
        undiscovered = parent[tgt] < 0
        src, tgt = src[undiscovered], tgt[undiscovered]
        if tgt.shape[0] == 0:
            break
        order = np.lexsort((src, tgt))
        src, tgt = src[order], tgt[order]
        starts = _segment_starts(tgt)
        new_nodes = tgt[starts]
        new_parents = src[starts]
        parent[new_nodes] = new_parents
        depth[new_nodes] = depth[new_parents] + 1
        frontier = new_nodes
    return parent, depth, rounds


def build_bfs_forest_soa(graph) -> BFSForest:
    """Columnar :func:`repro.core.bfs.build_bfs_forest`: flood minimum
    ids, then BFS from each component's minimum-id node."""
    adj = CSRAdjacency.from_graph(graph)
    root_of, flood_rounds = flood_min_ids_columns(adj)
    roots = np.unique(root_of).tolist()
    parent, depth, bfs_rounds = distributed_bfs_columns(adj, roots)
    return BFSForest(
        parent=parent,
        depth=depth,
        root_of=root_of,
        roots=roots,
        rounds=flood_rounds + bfs_rounds,
    )


# ----------------------------------------------------------------------
# Theorem 1.2, columnar end to end
# ----------------------------------------------------------------------
def connected_components_hybrid_soa(
    graph,
    rng: np.random.Generator | None = None,
    m_bound: int | None = None,
    overlay_params=None,
    record_traces: bool = False,
    tracer=None,
    *,
    ctx=None,
):
    """Columnar Theorem 1.2 pipeline (spanner → reduction → overlay →
    flood/BFS → well-forming).

    Returns a :class:`~repro.hybrid.components.ComponentsResult` whose
    ``spanner`` / ``reduced`` fields carry the columnar representations
    (:class:`SpannerColumns`, :class:`ReducedColumns` — same data, flat
    columns) and whose ``ledger`` is a :class:`SoAHybridLedger`.  Labels,
    forests, overlay graphs, and ledger summaries are bit-for-bit the
    per-node :func:`~repro.hybrid.components.connected_components_hybrid`
    outputs under a shared seed.

    ``tracer`` (or an ambient :func:`repro.obs.capture` scope) records
    each stage boundary as a ``cat="stage"`` span annotated with the
    stage's round charge — observation only, after the stage returns, so
    traced and untraced runs are bit-for-bit identical.
    """
    from repro.hybrid.components import (
        ComponentsResult,
        well_formed_forest_columns,
    )
    from repro.obs import maybe_span, resolve_tracer

    if rng is None:
        rng = np.random.default_rng(0)
    if tracer is None and ctx is not None:
        tracer = ctx.tracer
    tracer = resolve_tracer(tracer)
    ledger = SoAHybridLedger()

    with maybe_span(tracer, "spanner_broadcast", cat="stage", tier="soa") as sp:
        spanner = build_spanner_soa(graph, rng=rng, component_bound=m_bound, ctx=ctx)
        if sp is not None:
            sp.attrs["rounds"] = int(spanner.rounds)
    ledger.charge("spanner_broadcast", local_rounds=spanner.rounds)

    with maybe_span(tracer, "degree_reduction", cat="stage", tier="soa") as sp:
        reduced = reduce_degree_soa(spanner)
        if sp is not None:
            sp.attrs["rounds"] = int(reduced.rounds)
    ledger.charge("degree_reduction", local_rounds=reduced.rounds)

    with maybe_span(tracer, "overlay_evolutions", cat="stage", tier="soa"):
        overlay = build_hybrid_overlay_soa(
            reduced,
            rng=rng,
            params=overlay_params,
            record_traces=record_traces,
            m_bound=m_bound,
        )
    ledger.merge(overlay.ledger, prefix="overlay/")

    with maybe_span(tracer, "min_id_flood_and_bfs", cat="stage", tier="soa") as sp:
        bfs = build_bfs_forest_soa(overlay.final_graph)
        if sp is not None:
            sp.attrs["rounds"] = int(bfs.rounds)
    ledger.charge("min_id_flood_and_bfs", global_rounds=bfs.rounds)

    with maybe_span(tracer, "well_forming", cat="stage", tier="soa") as sp:
        forest = well_formed_forest_columns(bfs)
        if sp is not None:
            sp.attrs["rounds"] = int(forest.rounds)
    ledger.charge("well_forming", global_rounds=forest.rounds)

    return ComponentsResult(
        labels=bfs.root_of,
        forest=forest,
        bfs=bfs,
        spanner=spanner,
        reduced=reduced,
        overlay=overlay,
        ledger=ledger,
    )
