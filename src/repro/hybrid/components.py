"""Connected components with well-formed trees (Theorem 1.2).

Pipeline (§4.2): for an arbitrary-degree, possibly disconnected input
graph ``G``,

1. build the Elkin–Neiman spanner ``S(G)`` (outdegree ``O(log n)``,
   component-preserving) — ``O(log m)`` CONGEST rounds;
2. reduce to the bounded-degree graph ``H`` by edge delegation — 2
   rounds;
3. run the hybrid ``CreateExpander`` of Theorem 4.1 on ``H`` (walks stay
   within components, so every component becomes its own expander) —
   ``O(log m + log log n)`` rounds;
4. flood minimum ids and build a BFS tree per component, then transform
   each into a well-formed tree.

The component *label* of a node is the minimum node id of its component
(what the flooding elects as root).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bfs import BFSForest, build_bfs_forest
from repro.core.child_sibling import RootedTree
from repro.core.euler import WellFormedTree, build_well_formed_from_tree
from repro.graphs.analysis import adjacency_sets
from repro.hybrid.degree_reduction import ReducedGraph, reduce_degree
from repro.hybrid.overlay import (
    HybridOverlayParams,
    HybridOverlayResult,
    build_hybrid_overlay,
)
from repro.hybrid.spanner import SpannerResult, build_spanner
from repro.net.hybrid import HybridLedger

__all__ = [
    "HYBRID_TIERS",
    "ComponentForest",
    "ComponentsResult",
    "well_formed_forest",
    "connected_components_hybrid",
]

#: Execution tiers of the §4 pipeline: ``"object"`` runs the per-node
#: ``list[set]``/``dict`` implementations of this package; ``"soa"`` runs
#: the columnar port (:mod:`repro.hybrid.soa_pipeline` — the spanner
#: broadcast as an :class:`~repro.net.soa.SoAProtocolClass` population,
#: flat-column degree reduction / preparation / BFS).  Both produce
#: bit-for-bit identical labels, forests, overlays, and ledger totals
#: under a shared seed; benchmarks select via ``REPRO_HYBRID`` through
#: :func:`repro.experiments.harness.select_tier`.
HYBRID_TIERS = ("object", "soa")


@dataclass
class ComponentForest:
    """Per-component well-formed trees assembled into global arrays.

    ``parent[v]`` is ``v``'s parent in its component's well-formed tree
    (roots point to themselves); ``root_of[v]`` identifies the component.
    """

    parent: np.ndarray
    root_of: np.ndarray
    trees: dict[int, WellFormedTree]
    rounds: int

    def max_depth(self) -> int:
        return max((t.depth() for t in self.trees.values()), default=0)

    def max_degree(self) -> int:
        return max((t.max_degree() for t in self.trees.values()), default=0)


@dataclass
class ComponentsResult:
    """Everything produced by the Theorem 1.2 pipeline."""

    labels: np.ndarray
    forest: ComponentForest
    bfs: BFSForest
    spanner: SpannerResult
    reduced: ReducedGraph
    overlay: HybridOverlayResult
    ledger: HybridLedger = field(default_factory=HybridLedger)

    def components(self) -> dict[int, list[int]]:
        """Component membership keyed by label (minimum id)."""
        groups: dict[int, list[int]] = {}
        for v, label in enumerate(self.labels.tolist()):
            groups.setdefault(label, []).append(v)
        return groups


def well_formed_forest(bfs: BFSForest) -> ComponentForest:
    """Transform every BFS tree of a forest into a well-formed tree.

    Each component is relabelled to a compact index space, rebalanced via
    the child–sibling + Euler tour pipeline, and written back into global
    parent arrays.  Rounds are the maximum over components (they run in
    parallel).
    """
    n = bfs.parent.shape[0]
    parent = np.arange(n, dtype=np.int64)
    trees: dict[int, WellFormedTree] = {}
    rounds = 0

    members: dict[int, list[int]] = {}
    for v, root in enumerate(bfs.root_of.tolist()):
        members.setdefault(root, []).append(v)

    for root, nodes in members.items():
        nodes = sorted(nodes)
        index = {v: i for i, v in enumerate(nodes)}
        local_parent = np.array(
            [index[int(bfs.parent[v])] for v in nodes], dtype=np.int64
        )
        local_tree = RootedTree(root=index[root], parent=local_parent)
        wft = build_well_formed_from_tree(local_tree)
        trees[root] = wft
        rounds = max(rounds, wft.rounds)
        local = wft.tree.parent
        for v in nodes:
            parent[v] = nodes[int(local[index[v]])]

    return ComponentForest(
        parent=parent,
        root_of=bfs.root_of.copy(),
        trees=trees,
        rounds=rounds,
    )


def connected_components_hybrid(
    graph,
    rng: np.random.Generator | None = None,
    m_bound: int | None = None,
    overlay_params: HybridOverlayParams | None = None,
    record_traces: bool = False,
    tier: str = "object",
) -> ComponentsResult:
    """Theorem 1.2: well-formed trees on every connected component.

    Parameters
    ----------
    graph:
        Arbitrary-degree input (networkx graph or adjacency sets);
        directions, if any, are ignored.
    m_bound:
        Known upper bound on component sizes — drives the spanner
        broadcast length and the number of evolutions, realising the
        ``O(log m + log log n)`` refinement.
    record_traces:
        Propagated to the overlay builder (Theorem 1.3 needs it).
    tier:
        One of :data:`HYBRID_TIERS`.  ``"soa"`` dispatches to the
        columnar pipeline (:mod:`repro.hybrid.soa_pipeline`), which
        produces the identical result with flat-column ``spanner`` /
        ``reduced`` representations — the tier that keeps churn-rebuild
        loops practical at ``n ≥ 10⁵``.
    """
    if tier not in HYBRID_TIERS:
        raise ValueError(f"tier must be one of {HYBRID_TIERS}, got {tier!r}")
    if tier == "soa":
        # Lazy import: soa_pipeline pulls the network stack in.
        from repro.hybrid.soa_pipeline import connected_components_hybrid_soa

        return connected_components_hybrid_soa(
            graph,
            rng=rng,
            m_bound=m_bound,
            overlay_params=overlay_params,
            record_traces=record_traces,
        )
    if rng is None:
        rng = np.random.default_rng(0)
    adj = adjacency_sets(graph)
    ledger = HybridLedger()

    spanner = build_spanner(graph, rng=rng, component_bound=m_bound)
    ledger.charge("spanner_broadcast", local_rounds=spanner.rounds)

    reduced = reduce_degree(spanner)
    ledger.charge("degree_reduction", local_rounds=reduced.rounds)

    overlay = build_hybrid_overlay(
        reduced.adj,
        rng=rng,
        params=overlay_params,
        record_traces=record_traces,
        m_bound=m_bound,
    )
    ledger.merge(overlay.ledger, prefix="overlay/")

    bfs = build_bfs_forest(overlay.final_graph)
    ledger.charge("min_id_flood_and_bfs", global_rounds=bfs.rounds)

    forest = well_formed_forest(bfs)
    ledger.charge("well_forming", global_rounds=forest.rounds)

    # Sanity: the overlay may only merge knowledge *within* components of
    # the input — labels must coincide with the input components.
    labels = bfs.root_of
    del adj  # labels are authoritative; tests compare against ground truth
    return ComponentsResult(
        labels=labels,
        forest=forest,
        bfs=bfs,
        spanner=spanner,
        reduced=reduced,
        overlay=overlay,
        ledger=ledger,
    )
