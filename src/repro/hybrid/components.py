"""Connected components with well-formed trees (Theorem 1.2).

Pipeline (§4.2): for an arbitrary-degree, possibly disconnected input
graph ``G``,

1. build the Elkin–Neiman spanner ``S(G)`` (outdegree ``O(log n)``,
   component-preserving) — ``O(log m)`` CONGEST rounds;
2. reduce to the bounded-degree graph ``H`` by edge delegation — 2
   rounds;
3. run the hybrid ``CreateExpander`` of Theorem 4.1 on ``H`` (walks stay
   within components, so every component becomes its own expander) —
   ``O(log m + log log n)`` rounds;
4. flood minimum ids and build a BFS tree per component, then transform
   each into a well-formed tree.

The component *label* of a node is the minimum node id of its component
(what the flooding elects as root).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.bfs import BFSForest, build_bfs_forest
from repro.core.child_sibling import RootedTree, to_child_sibling_columns
from repro.core.euler import (
    WellFormedTree,
    build_well_formed_from_tree,
    euler_tour_forest,
)
from repro.graphs.analysis import adjacency_sets
from repro.hybrid.degree_reduction import ReducedGraph, reduce_degree
from repro.hybrid.overlay import (
    HybridOverlayParams,
    HybridOverlayResult,
    build_hybrid_overlay,
)
from repro.hybrid.spanner import SpannerResult, build_spanner
from repro.net.hybrid import HybridLedger
from repro.net.vectorops import group_argsort

__all__ = [
    "HYBRID_TIERS",
    "ComponentForest",
    "ComponentsResult",
    "well_formed_forest",
    "well_formed_forest_columns",
    "connected_components_hybrid",
]

#: Execution tiers of the §4 pipeline: ``"object"`` runs the per-node
#: ``list[set]``/``dict`` implementations of this package; ``"soa"`` runs
#: the columnar port (:mod:`repro.hybrid.soa_pipeline` — the spanner
#: broadcast as an :class:`~repro.net.soa.SoAProtocolClass` population,
#: flat-column degree reduction / preparation / BFS).  Both produce
#: bit-for-bit identical labels, forests, overlays, and ledger totals
#: under a shared seed; benchmarks select via ``REPRO_HYBRID`` through
#: :func:`repro.experiments.harness.select_tier`.  Authoritative in
#: :mod:`repro.runtime.context`; re-exported here for compatibility.
from repro.runtime import HYBRID_TIERS, RunContext, validate_tier  # noqa: E402


@dataclass
class ComponentForest:
    """Per-component well-formed trees assembled into global arrays.

    ``parent[v]`` is ``v``'s parent in its component's well-formed tree
    (roots point to themselves); ``root_of[v]`` identifies the component.
    """

    parent: np.ndarray
    root_of: np.ndarray
    trees: dict[int, WellFormedTree]
    rounds: int

    def max_depth(self) -> int:
        return max((t.depth() for t in self.trees.values()), default=0)

    def max_degree(self) -> int:
        return max((t.max_degree() for t in self.trees.values()), default=0)


@dataclass
class ComponentsResult:
    """Everything produced by the Theorem 1.2 pipeline."""

    labels: np.ndarray
    forest: ComponentForest
    bfs: BFSForest
    spanner: SpannerResult
    reduced: ReducedGraph
    overlay: HybridOverlayResult
    ledger: HybridLedger = field(default_factory=HybridLedger)

    def components(self) -> dict[int, list[int]]:
        """Component membership keyed by label (minimum id).

        One grouping sort instead of a per-element Python loop.  Keys
        come out ascending, which *is* the legacy first-occurrence
        insertion order: a component's label is its minimum member id,
        so label ``L`` first occurs at ``v = L`` — this holds for gappy
        and non-contiguous label sets too (pinned in
        ``tests/hybrid/test_components.py``).
        """
        labels = np.asarray(self.labels, dtype=np.int64)
        n = labels.shape[0]
        if n == 0:
            return {}
        order = group_argsort(labels, n)
        grouped = labels[order]
        starts = np.flatnonzero(
            np.concatenate([[True], grouped[1:] != grouped[:-1]])
        )
        bounds = np.append(starts, n)
        members = order.tolist()
        return {
            int(grouped[lo]): members[lo:hi]
            for lo, hi in zip(starts.tolist(), bounds[1:].tolist())
        }


def well_formed_forest(bfs: BFSForest) -> ComponentForest:
    """Transform every BFS tree of a forest into a well-formed tree.

    Each component is relabelled to a compact index space, rebalanced via
    the child–sibling + Euler tour pipeline, and written back into global
    parent arrays.  Rounds are the maximum over components (they run in
    parallel).
    """
    n = bfs.parent.shape[0]
    parent = np.arange(n, dtype=np.int64)
    trees: dict[int, WellFormedTree] = {}
    rounds = 0

    # Insertion order of ``members`` is the first occurrence of each
    # root as ``v`` ascends; a component's root is its minimum member
    # id (the flooding elects the minimum), so iteration is ascending
    # by root — the order the columnar port reproduces.  The per-root
    # transforms are independent, so ``rounds`` (a max) and the global
    # writebacks are order-free regardless.
    members: dict[int, list[int]] = {}
    for v, root in enumerate(bfs.root_of.tolist()):
        members.setdefault(root, []).append(v)

    for root, nodes in members.items():
        nodes = sorted(nodes)
        index = {v: i for i, v in enumerate(nodes)}
        local_parent = np.array(
            [index[int(bfs.parent[v])] for v in nodes], dtype=np.int64
        )
        local_tree = RootedTree(root=index[root], parent=local_parent)
        wft = build_well_formed_from_tree(local_tree)
        trees[root] = wft
        rounds = max(rounds, wft.rounds)
        local = wft.tree.parent
        for v in nodes:
            parent[v] = nodes[int(local[index[v]])]

    return ComponentForest(
        parent=parent,
        root_of=bfs.root_of.copy(),
        trees=trees,
        rounds=rounds,
    )


class _LazyForestTrees(Mapping):
    """On-demand :class:`WellFormedTree` views over columnar forest state.

    The columnar well-forming never materialises per-component Python
    trees; this mapping rebuilds the compact-index
    :class:`~repro.core.child_sibling.RootedTree` of a component only
    when a consumer actually asks for it (tests, depth/degree audits),
    bit-for-bit equal to the object path's ``trees[root]``.  Keys
    iterate ascending by root id — the object path's insertion order.
    """

    def __init__(
        self,
        parent: np.ndarray,
        roots: np.ndarray,
        member_lists: np.ndarray,
        member_bounds: np.ndarray,
        comp_rounds: np.ndarray,
    ) -> None:
        self._parent = parent
        self._roots = roots
        self._members = member_lists
        self._bounds = member_bounds
        self._rounds = comp_rounds
        self._cache: dict[int, WellFormedTree] = {}

    def __len__(self) -> int:
        return int(self._roots.shape[0])

    def __iter__(self):
        return iter(self._roots.tolist())

    def __getitem__(self, root: int) -> WellFormedTree:
        root = int(root)
        cached = self._cache.get(root)
        if cached is not None:
            return cached
        at = int(np.searchsorted(self._roots, root))
        if at >= self._roots.shape[0] or self._roots[at] != root:
            raise KeyError(root)
        nodes = np.sort(self._members[self._bounds[at] : self._bounds[at + 1]])
        local_parent = np.searchsorted(nodes, self._parent[nodes])
        tree = RootedTree(
            root=int(np.searchsorted(nodes, root)), parent=local_parent
        )
        wft = WellFormedTree(tree=tree, rounds=int(self._rounds[at]))
        self._cache[root] = wft
        return wft


def well_formed_forest_columns(bfs: BFSForest) -> ComponentForest:
    """Columnar :func:`well_formed_forest`: every component at once.

    The Theorem 4.1 rebalancing as four flat passes over global arrays —
    no per-component ``dict`` relabelling, no Python successor walk:

    1. **child–sibling** conversion of the whole forest in one grouped
       sort (:func:`~repro.core.child_sibling.to_child_sibling_columns`);
    2. **Euler tours** of all components from the local successor rule,
       positioned by one combined pointer-jumping ranking
       (:func:`~repro.core.euler.euler_tour_forest` — the doubling
       rounds are real, and charged per component);
    3. **preorder ranks** by sorting ``(component, first_entry)`` — the
       root's ``-1`` sentinel places it at rank 0 of its segment;
    4. **heap rebuild**: the node of component-rank ``r`` attaches to
       the node of rank ``⌊(r-1)/2⌋``, written straight into the global
       parent array.

    Output is bit-for-bit :func:`well_formed_forest`'s (parents, roots,
    rounds, and the lazily materialised per-component trees) — pinned
    over a 12-seed matrix in ``tests/hybrid/test_columnar_forest.py``.
    """
    n = bfs.parent.shape[0]
    root_of = np.asarray(bfs.root_of, dtype=np.int64)
    if n == 0:
        return ComponentForest(
            parent=np.arange(0, dtype=np.int64),
            root_of=root_of.copy(),
            trees={},
            rounds=0,
        )
    cs_parent = to_child_sibling_columns(bfs.parent)
    tour = euler_tour_forest(cs_parent, root_of)

    # Rank nodes inside each component by first tour entry; the root's
    # -1 sentinel sorts it to rank 0.  Keys are unique (entries are
    # distinct within a component), so the default introsort is
    # deterministic; key fits int64 for any n (root < n, entry < 2n).
    ranked = np.argsort(root_of * np.int64(2 * n + 2) + tour.first_entry + 1)
    grouped_roots = root_of[ranked]
    starts = np.flatnonzero(
        np.concatenate([[True], grouped_roots[1:] != grouped_roots[:-1]])
    )
    bounds = np.append(starts, n)
    sizes = np.diff(bounds)
    offsets = np.repeat(starts, sizes)
    rank = np.arange(n, dtype=np.int64) - offsets

    # Heap writeback: rank r (>= 1) hangs off rank (r - 1) // 2 of the
    # same component segment; rank 0 is the root, self-parented.
    parent = np.empty(n, dtype=np.int64)
    heap_slot = np.maximum(offsets + (rank - 1) // 2, 0)
    parent[ranked] = np.where(rank == 0, ranked, ranked[heap_slot])

    # Per-component rounds: 1 child–sibling round + the component's
    # real list-ranking rounds + ceil(log2 n_c) routing rounds
    # (singletons cost nothing) — then the forest max, as the
    # components rebalance in parallel.
    rank_rounds = np.maximum.reduceat(tour.rank_rounds[ranked], starts)
    routing = np.ceil(np.log2(np.maximum(2, sizes))).astype(np.int64)
    comp_rounds = np.where(sizes == 1, 0, 1 + rank_rounds + routing)

    trees = _LazyForestTrees(
        parent=parent,
        roots=grouped_roots[starts],
        member_lists=ranked,
        member_bounds=bounds,
        comp_rounds=comp_rounds,
    )
    return ComponentForest(
        parent=parent,
        root_of=root_of.copy(),
        trees=trees,
        rounds=int(comp_rounds.max(initial=0)),
    )


def connected_components_hybrid(
    graph,
    rng: np.random.Generator | None = None,
    m_bound: int | None = None,
    overlay_params: HybridOverlayParams | None = None,
    record_traces: bool = False,
    tier: str | None = None,
    tracer=None,
    *,
    ctx: RunContext | None = None,
) -> ComponentsResult:
    """Theorem 1.2: well-formed trees on every connected component.

    Parameters
    ----------
    graph:
        Arbitrary-degree input (networkx graph or adjacency sets);
        directions, if any, are ignored.
    m_bound:
        Known upper bound on component sizes — drives the spanner
        broadcast length and the number of evolutions, realising the
        ``O(log m + log log n)`` refinement.
    record_traces:
        Propagated to the overlay builder (Theorem 1.3 needs it).
    tier:
        One of :data:`HYBRID_TIERS`.  ``"soa"`` dispatches to the
        columnar pipeline (:mod:`repro.hybrid.soa_pipeline`), which
        produces the identical result with flat-column ``spanner`` /
        ``reduced`` representations — the tier that keeps churn-rebuild
        loops practical at ``n ≥ 10⁵``.
    ctx:
        A resolved :class:`~repro.runtime.context.RunContext`; supplies
        ``tier``/``tracer`` (and workers/fault spec for the networks the
        SoA tier builds) when the kwargs are omitted — kwargs win.
    """
    if tier is None:
        tier = ctx.hybrid if ctx is not None else "object"
    validate_tier("hybrid", tier)
    if tier == "soa":
        # Lazy import: soa_pipeline pulls the network stack in.
        from repro.hybrid.soa_pipeline import connected_components_hybrid_soa

        return connected_components_hybrid_soa(
            graph,
            rng=rng,
            m_bound=m_bound,
            overlay_params=overlay_params,
            record_traces=record_traces,
            tracer=tracer,
            ctx=ctx,
        )
    from repro.obs import maybe_span, resolve_tracer

    if rng is None:
        rng = np.random.default_rng(0)
    if tracer is None and ctx is not None:
        tracer = ctx.tracer
    tracer = resolve_tracer(tracer)
    adj = adjacency_sets(graph)
    ledger = HybridLedger()

    with maybe_span(tracer, "spanner_broadcast", cat="stage", tier="object") as sp:
        spanner = build_spanner(graph, rng=rng, component_bound=m_bound)
        if sp is not None:
            sp.attrs["rounds"] = int(spanner.rounds)
    ledger.charge("spanner_broadcast", local_rounds=spanner.rounds)

    with maybe_span(tracer, "degree_reduction", cat="stage", tier="object") as sp:
        reduced = reduce_degree(spanner)
        if sp is not None:
            sp.attrs["rounds"] = int(reduced.rounds)
    ledger.charge("degree_reduction", local_rounds=reduced.rounds)

    with maybe_span(tracer, "overlay_evolutions", cat="stage", tier="object"):
        overlay = build_hybrid_overlay(
            reduced.adj,
            rng=rng,
            params=overlay_params,
            record_traces=record_traces,
            m_bound=m_bound,
        )
    ledger.merge(overlay.ledger, prefix="overlay/")

    with maybe_span(tracer, "min_id_flood_and_bfs", cat="stage", tier="object") as sp:
        bfs = build_bfs_forest(overlay.final_graph)
        if sp is not None:
            sp.attrs["rounds"] = int(bfs.rounds)
    ledger.charge("min_id_flood_and_bfs", global_rounds=bfs.rounds)

    with maybe_span(tracer, "well_forming", cat="stage", tier="object") as sp:
        forest = well_formed_forest(bfs)
        if sp is not None:
            sp.attrs["rounds"] = int(forest.rounds)
    ledger.charge("well_forming", global_rounds=forest.rounds)

    # Sanity: the overlay may only merge knowledge *within* components of
    # the input — labels must coincide with the input components.
    labels = bfs.root_of
    del adj  # labels are authoritative; tests compare against ground truth
    return ComponentsResult(
        labels=labels,
        forest=forest,
        bfs=bfs,
        spanner=spanner,
        reduced=reduced,
        overlay=overlay,
        ledger=ledger,
    )
