"""Elkin–Neiman sparse spanner construction (§4.2, Step 1).

Theorem 1.2 must handle inputs of *unbounded* degree, but the overlay
construction wants degree ``O(log n)``.  The first step is a spanner
``S(G)`` with ``O(log n)`` outdegree per node, built with the
exponential-random-shift technique of Miller et al. as refined by Elkin
and Neiman, truncated to each component's size ``m``:

1. every node draws ``r_v ~ Exp(1/2)``, discarding values ``> 2 ln m``;
2. values are broadcast for ``2 ln m + 1`` rounds — in CONGEST it
   suffices for each node to forward, each round, only the value of the
   source ``u`` currently maximising ``m_u(v) = r_u − d(u, v)``;
3. ``v`` adds a directed edge to ``p_u(v)`` (its predecessor towards
   ``u``) for every heard source with ``m_u(v) ≥ m(v) − 1``;
4. every node of degree below the threshold ``c log n`` adds *all* its
   incident edges.

**Documented deviation** (DESIGN.md §2.5): nodes that end up *inactive*
(heard no non-negative value) also add all their incident edges.  Lemma
4.5 shows inactive nodes have degree ``< c log n`` w.h.p., so this is
w.h.p. the same rule — but it makes the connectivity proof of Lemma 4.8
hold *deterministically*, which downstream algorithms (and tests) rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.analysis import adjacency_sets

__all__ = ["SpannerResult", "build_spanner"]


@dataclass
class SpannerResult:
    """Directed spanner ``S(G)`` with construction metadata.

    Attributes
    ----------
    out_edges:
        ``out_edges[v]`` is the set of spanner targets of ``v`` (every
        ``(v, u)`` is an edge of the input graph).
    active:
        Boolean per node: heard some ``m_u(v) ≥ 0``.
    added_all:
        Boolean per node: fell back to adding every incident edge
        (low degree or inactive).
    shifts:
        The random values ``r_v`` (``-inf`` where discarded).
    rounds:
        CONGEST rounds consumed (the truncated broadcast).
    """

    out_edges: list[set[int]]
    active: np.ndarray
    added_all: np.ndarray
    shifts: np.ndarray
    rounds: int

    def undirected_adjacency(self) -> list[set[int]]:
        """The spanner viewed as an undirected graph."""
        n = len(self.out_edges)
        adj: list[set[int]] = [set() for _ in range(n)]
        for v, targets in enumerate(self.out_edges):
            for u in targets:
                adj[v].add(u)
                adj[u].add(v)
        return adj

    def max_outdegree(self) -> int:
        return max((len(t) for t in self.out_edges), default=0)

    def num_directed_edges(self) -> int:
        return sum(len(t) for t in self.out_edges)


def build_spanner(
    graph,
    rng: np.random.Generator,
    component_bound: int | None = None,
    degree_threshold: int | None = None,
) -> SpannerResult:
    """Construct the Elkin–Neiman spanner of ``graph``.

    Parameters
    ----------
    graph:
        Any graph accepted by :func:`repro.graphs.analysis.adjacency_sets`
        (treated as undirected; may be disconnected — the construction is
        purely local, so components are independent).
    rng:
        Randomness for the exponential shifts.
    component_bound:
        Known upper bound ``m`` on component sizes; broadcasts run for
        ``⌊2 ln m⌋ + 1`` rounds (Theorem 1.2's ``O(log m)`` term).
        Defaults to ``n``.
    degree_threshold:
        The ``c log n`` fallback threshold of step 4.  Defaults to
        ``max(8, ⌈2 log₂ n⌉)`` — the calibrated value under which spanner
        outdegrees stay ``O(log n)`` across the test matrix.
    """
    adj = adjacency_sets(graph)
    n = len(adj)
    if n == 0:
        return SpannerResult(
            out_edges=[],
            active=np.zeros(0, dtype=bool),
            added_all=np.zeros(0, dtype=bool),
            shifts=np.zeros(0),
            rounds=0,
        )
    m = component_bound if component_bound is not None else n
    m = max(2, m)
    if degree_threshold is None:
        degree_threshold = max(8, math.ceil(2 * math.log2(max(2, n))))
    limit = 2.0 * math.log(m)
    rounds = int(limit) + 1

    shifts = rng.exponential(scale=2.0, size=n)  # Exp(beta=1/2) has mean 2
    shifts[shifts > limit] = -math.inf

    # heard[v]: source u -> (best value r_u - d(u, v), predecessor).
    heard: list[dict[int, tuple[float, int]]] = [dict() for _ in range(n)]
    for v in range(n):
        if shifts[v] > -math.inf:
            heard[v][v] = (float(shifts[v]), v)

    for _round in range(rounds):
        # Each node forwards only its current maximiser (CONGEST: one
        # O(log n)-bit message per edge per round).
        outbox: list[tuple[int, int, float] | None] = [None] * n
        for v in range(n):
            if heard[v]:
                u, (val, _pred) = max(
                    heard[v].items(), key=lambda item: (item[1][0], -item[0])
                )
                outbox[v] = (u, v, val)
        for v in range(n):
            msg = outbox[v]
            if msg is None:
                continue
            u, sender, val = msg
            arriving = val - 1.0
            for w in adj[v]:
                prev = heard[w].get(u)
                if prev is None or arriving > prev[0]:
                    heard[w][u] = (arriving, sender)

    out_edges: list[set[int]] = [set() for _ in range(n)]
    active = np.zeros(n, dtype=bool)
    added_all = np.zeros(n, dtype=bool)
    for v in range(n):
        best = max((val for val, _pred in heard[v].values()), default=-math.inf)
        active[v] = best >= 0.0
        low_degree = len(adj[v]) < degree_threshold
        if low_degree or not active[v]:
            out_edges[v] |= adj[v]
            added_all[v] = True
        if active[v]:
            for _u, (val, pred) in heard[v].items():
                if val >= best - 1.0 and pred != v:
                    out_edges[v].add(pred)
    return SpannerResult(
        out_edges=out_edges,
        active=active,
        added_all=added_all,
        shifts=shifts,
        rounds=rounds,
    )
