"""Spanning trees by unwinding random walks (Theorem 1.3).

§4.3 of the paper: every overlay edge created during ``CreateExpander``
remembers the walk that produced it.  A depth-first traversal (Euler tour)
of the final overlay's BFS tree is therefore a path ``P_{L'}`` whose edges
can be *replaced* by the walks that realise them, level by level, until
only level-0 edges remain — a path ``P_0`` in the prepared graph that
visits every node.  Loop-erasing ``P_0`` (every node keeps the edge over
which it is **first** reached) yields a spanning tree; delegated edges of
the reduced graph ``H`` are expanded through their delegation centre so
the resulting tree uses only edges of ``G``.

Implementation notes (DESIGN.md §2.6):

- The level-by-level replacement is realised as a **lazy generator
  stream**: expansion recursion yields oriented level-0 traversals one at
  a time and stops as soon as every node has been visited.  This matters:
  materialising ``P_0`` is *multiplicatively* expensive — each level
  multiplies path length by the non-lazy trace length — a point on which
  Lemma 4.11's additive accounting is optimistic (measured in experiment
  E9; see EXPERIMENTS.md).  The covering prefix, by contrast, behaves
  like a covering random walk of the base graph and is short.
- Loop-erasure is performed directly over ``G``-edges (delegation centres
  are expanded inside the stream), which makes the first-arrival edges a
  spanning tree of ``G`` immediately — the same walk the paper's
  two-phase "repair" processes, expressed over ``G``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.bfs import build_bfs_forest
from repro.core.child_sibling import RootedTree
from repro.core.euler import euler_tour
from repro.graphs.analysis import adjacency_sets, is_connected
from repro.graphs.portgraph import SELF_LOOP
from repro.hybrid.degree_reduction import reduce_degree
from repro.hybrid.overlay import (
    HybridOverlayParams,
    HybridOverlayResult,
    build_hybrid_overlay,
)
from repro.hybrid.spanner import build_spanner
from repro.net.hybrid import HybridLedger

__all__ = ["SpanningTreeResult", "spanning_tree_hybrid", "UnwindBudgetExceeded"]


class UnwindBudgetExceeded(RuntimeError):
    """The expansion stream exceeded its step budget before covering all
    nodes (should not happen at calibrated parameters; the budget guards
    against pathological inputs)."""


@dataclass
class SpanningTreeResult:
    """A spanning tree of ``G`` recovered from walk provenance.

    Attributes
    ----------
    root:
        The tour's starting node (root of the overlay BFS tree).
    parent:
        ``(n,)`` parent array of the spanning tree (root points to
        itself); every ``{v, parent[v]}`` is an edge of ``G``.
    tree_edges:
        The ``n - 1`` undirected tree edges.
    stream_steps:
        Level-0 stream entries consumed before full coverage.
    occurrences:
        Per-node visit counts within the consumed stream prefix
        (Lemma 4.11's quantity, measured on the covering prefix).
    overlay:
        The underlying Theorem 4.1 overlay (with trace provenance).
    ledger:
        Hybrid-model round/capacity accounting.
    """

    root: int
    parent: np.ndarray
    tree_edges: set[tuple[int, int]]
    stream_steps: int
    occurrences: np.ndarray
    overlay: HybridOverlayResult
    ledger: HybridLedger = field(default_factory=HybridLedger)


def _tree_edge_ids(overlay_graph, tree: RootedTree) -> dict[tuple[int, int], int]:
    """Map each directed tree edge to an overlay edge id realising it."""
    ids: dict[tuple[int, int], int] = {}
    ports = overlay_graph.ports
    edge_ids = overlay_graph.port_edge_ids
    for child, parent in enumerate(tree.parent.tolist()):
        if parent == child:
            continue
        row = ports[child]
        hits = np.nonzero(row == parent)[0]
        if hits.size == 0:
            raise ValueError(f"tree edge {child}->{parent} not present in overlay")
        eid = int(edge_ids[child, hits[0]])
        ids[(child, parent)] = eid
        ids[(parent, child)] = eid
    return ids


class _WalkUnwinder:
    """Recursive lazy expansion of overlay edges down to level 0."""

    def __init__(self, overlay: HybridOverlayResult, delegation: dict) -> None:
        self.registries = overlay.level_registries
        self.base_registry = overlay.base_registry
        self.delegation = delegation

    def expand(self, level: int, edge_id: int, src: int, dst: int) -> Iterator[tuple[int, int]]:
        """Yield oriented ``G``-edges realising overlay edge ``src → dst``
        at the given level (level 0 = prepared base graph)."""
        if level == 0:
            base = self.base_registry[edge_id]
            if {src, dst} != {base.u, base.v}:
                raise ValueError("base edge endpoints do not match traversal")
            centre = self.delegation.get(frozenset((src, dst)))
            if centre is None:
                yield (src, dst)
            else:
                yield (src, centre)
                yield (centre, dst)
            return

        entry = self.registries[level - 1][edge_id]
        nodes = entry.node_trace
        eids = entry.edge_trace
        if nodes is None or eids is None:
            raise ValueError("overlay was built without record_traces=True")
        steps = eids.shape[0]
        if src == entry.origin and dst == entry.endpoint:
            for i in range(steps):
                eid = int(eids[i])
                if eid == SELF_LOOP:
                    continue
                yield from self.expand(level - 1, eid, int(nodes[i]), int(nodes[i + 1]))
        elif src == entry.endpoint and dst == entry.origin:
            for i in reversed(range(steps)):
                eid = int(eids[i])
                if eid == SELF_LOOP:
                    continue
                yield from self.expand(level - 1, eid, int(nodes[i + 1]), int(nodes[i]))
        else:
            raise ValueError(
                f"traversal ({src}->{dst}) does not match overlay edge "
                f"({entry.origin}, {entry.endpoint})"
            )


def spanning_tree_hybrid(
    graph,
    rng: np.random.Generator | None = None,
    overlay_params: HybridOverlayParams | None = None,
    force_spanner: bool | None = None,
    gap_threshold: float | None = 0.04,
    max_stream_steps: int | None = None,
) -> SpanningTreeResult:
    """Theorem 1.3: compute a spanning tree of the connected graph ``G``.

    Parameters
    ----------
    graph:
        Connected input (networkx graph or adjacency sets).
    force_spanner:
        ``True``/``False`` forces/disables the §4.2 spanner + degree
        reduction preprocessing; by default it engages automatically when
        the input degree exceeds ``max(8, 2 log₂ n)``.
    gap_threshold:
        Adaptive evolution stop for the overlay (few long-walk evolutions
        suffice and keep walk provenance shallow).
    max_stream_steps:
        Budget for the level-0 expansion stream; defaults to
        ``512 · n · ⌈log₂ n⌉²``.

    Raises
    ------
    ValueError
        If the input graph is disconnected.
    UnwindBudgetExceeded
        If the stream budget runs out before covering all nodes.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    adj = adjacency_sets(graph)
    n = len(adj)
    if n < 1:
        raise ValueError("need at least one node")
    if not is_connected(adj):
        raise ValueError("spanning tree requires a connected input graph")
    ledger = HybridLedger()

    max_degree = max((len(a) for a in adj), default=0)
    log_n = max(1, math.ceil(math.log2(max(2, n))))
    if force_spanner is None:
        force_spanner = max_degree > max(8, 2 * log_n)

    delegation: dict = {}
    base_adj = adj
    if force_spanner:
        spanner = build_spanner(graph, rng=rng)
        ledger.charge("spanner_broadcast", local_rounds=spanner.rounds)
        reduced = reduce_degree(spanner)
        ledger.charge("degree_reduction", local_rounds=reduced.rounds)
        delegation = reduced.delegation
        base_adj = reduced.adj

    overlay = build_hybrid_overlay(
        base_adj,
        rng=rng,
        params=overlay_params,
        record_traces=True,
        gap_threshold=gap_threshold,
    )
    ledger.merge(overlay.ledger, prefix="overlay/")
    # Trace annotation multiplies message sizes by ℓ "submessages": the
    # paper charges O(log^5 n) global capacity for this (§4.3).
    ledger.charge(
        "trace_annotation",
        global_rounds=0,
        global_capacity=overlay.params.delta * overlay.params.ell**2,
    )

    bfs = build_bfs_forest(overlay.final_graph)
    if len(bfs.roots) != 1:
        raise ValueError("overlay is disconnected; cannot span")
    ledger.charge("overlay_bfs", global_rounds=bfs.rounds)
    tree = RootedTree(root=bfs.roots[0], parent=bfs.parent.copy())

    tour = euler_tour(tree)
    ledger.charge("euler_tour", global_rounds=2 * log_n)

    edge_ids = _tree_edge_ids(overlay.final_graph, tree)
    unwinder = _WalkUnwinder(overlay, delegation)
    top_level = len(overlay.levels) - 1

    if max_stream_steps is None:
        max_stream_steps = 512 * n * log_n * log_n

    root = tree.root
    visited = np.zeros(n, dtype=bool)
    visited[root] = True
    num_visited = 1
    parent = np.arange(n, dtype=np.int64)
    occurrences = np.zeros(n, dtype=np.int64)
    occurrences[root] = 1
    steps = 0
    current = root

    for u, v in tour.edges:
        for a, b in unwinder.expand(top_level, edge_ids[(u, v)], u, v):
            if a != current:
                raise AssertionError(
                    f"stream discontinuity: at {current}, edge ({a}, {b})"
                )
            current = b
            steps += 1
            occurrences[b] += 1
            if not visited[b]:
                visited[b] = True
                parent[b] = a
                num_visited += 1
            if steps > max_stream_steps:
                raise UnwindBudgetExceeded(
                    f"covered {num_visited}/{n} nodes in {steps} stream steps"
                )
        if num_visited == n:
            break
        current = v  # the expansion of (u, v) ends exactly at v
    if num_visited != n:
        raise AssertionError("Euler tour stream ended before covering all nodes")

    tree_edges = {
        (min(v, int(parent[v])), max(v, int(parent[v])))
        for v in range(n)
        if v != root
    }
    ledger.charge("loop_erasure", global_rounds=2 * log_n)
    return SpanningTreeResult(
        root=root,
        parent=parent,
        tree_edges=tree_edges,
        stream_steps=steps,
        occurrences=occurrences,
        overlay=overlay,
        ledger=ledger,
    )
