"""Network monitoring on the overlay (§1.4, via [27]).

The paper's second corollary: *"Every monitoring problem presented in
[27] can be solved in time O(log n), w.h.p., instead of O(log² n)
deterministically.  These problems include monitoring the graph's node
and edge count [and] its bipartiteness…"*

Once a well-formed tree exists over the network, each monitoring query is
one aggregation (``O(log n)`` rounds) over locally computable inputs:

- **node count** — sum of ones;
- **edge count** — sum of degrees, halved;
- **degree extremes** — max/min aggregation;
- **bipartiteness** — 2-colour by BFS-layer parity (already known from
  the overlay construction's BFS), then aggregate a single conflict bit
  over the *local* edges.

Every monitor returns the measured value and its round charge; the X2
bench compares the totals against the deterministic ``O(log² n)``
baseline of [27] (represented by the supernode-merging round cost, since
[27] runs on that machinery).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bfs import build_bfs_forest
from repro.core.child_sibling import RootedTree
from repro.core.primitives import TreePrimitives
from repro.graphs.analysis import adjacency_sets

__all__ = ["MonitorReport", "NetworkMonitor", "ROOTING_MODES"]


@dataclass
class MonitorReport:
    """One monitoring query's answer and cost."""

    value: object
    rounds: int


#: How a monitor builds its aggregation tree when none is supplied: the
#: same mode set as the pipeline's rooting step (single source of
#: truth).  ``"reference"`` runs the centralised BFS oracle; the others
#: execute the real rooting protocol on the NCC0 simulator at the chosen
#: tier.  All four build the identical tree (min-id root, min-id parent
#: tie-break), so every monitor answer and round charge agrees —
#: smoke-tested in ``tests/hybrid/test_monitoring.py``.
from repro.core.pipeline import ROOTING_MODES  # noqa: E402


class NetworkMonitor:
    """Monitoring queries over a graph with an established overlay tree.

    Parameters
    ----------
    graph:
        The monitored network (local edges).
    tree:
        A well-formed tree over the same nodes (from the Theorem 1.1
        pipeline); if omitted, a BFS tree of ``graph`` is built — the
        round charges then reflect that tree's height.
    rooting:
        One of :data:`ROOTING_MODES`; selects the execution tier used to
        build the BFS tree when ``tree`` is omitted (ignored otherwise).
        The message-level tiers flood for ``diameter(graph)`` rounds —
        monitoring runs on arbitrary graphs, where the paper's
        ``log n ≥ diameter`` budget need not hold.
    """

    def __init__(
        self, graph, tree: RootedTree | None = None, rooting: str = "reference"
    ) -> None:
        if rooting not in ROOTING_MODES:
            raise ValueError(f"rooting must be one of {ROOTING_MODES}, got {rooting!r}")
        self.adj = adjacency_sets(graph)
        if tree is None:
            tree = self._build_tree(rooting)
        if tree.n != len(self.adj):
            raise ValueError("tree and graph disagree on the node count")
        self.tree = tree
        self.prims = TreePrimitives(tree)

    def _build_tree(self, rooting: str) -> RootedTree:
        if rooting == "reference":
            bfs = build_bfs_forest(self.adj)
            if len(bfs.roots) != 1:
                raise ValueError("monitoring requires a connected network")
            return RootedTree(root=bfs.roots[0], parent=bfs.parent.copy())

        from repro.core.protocol_tree import run_batch_rooting, run_protocol_rooting
        from repro.core.soa_rooting import run_soa_rooting
        from repro.graphs.analysis import diameter, is_connected
        from repro.graphs.portgraph import PortGraph

        if not is_connected(self.adj):
            raise ValueError("monitoring requires a connected network")
        n = len(self.adj)
        edges = [
            (v, u) for v in range(n) for u in sorted(self.adj[v]) if u > v
        ]
        ends_a = np.array([v for v, _ in edges], dtype=np.int64)
        ends_b = np.array([u for _, u in edges], dtype=np.int64)
        delta = max((len(a) for a in self.adj), default=1) or 1
        pg = PortGraph.from_edge_multiset(
            n=n, delta=delta, endpoints_a=ends_a, endpoints_b=ends_b
        )
        runner = {
            "protocol": run_protocol_rooting,
            "batch": run_batch_rooting,
            "soa": run_soa_rooting,
        }[rooting]
        result = runner(pg, flood_rounds=max(1, diameter(self.adj)))
        return RootedTree(root=result.root, parent=result.parent.copy())

    # ------------------------------------------------------------------
    def node_count(self) -> MonitorReport:
        """Exact number of live nodes."""
        res = self.prims.count_nodes()
        return MonitorReport(value=res.value, rounds=res.rounds)

    def edge_count(self) -> MonitorReport:
        """Exact number of local edges (sum of degrees / 2)."""
        degrees = [len(a) for a in self.adj]
        res = self.prims.aggregate(degrees, lambda a, b: a + b)
        return MonitorReport(value=res.value // 2, rounds=res.rounds)

    def max_degree(self) -> MonitorReport:
        degrees = [len(a) for a in self.adj]
        res = self.prims.aggregate(degrees, max)
        return MonitorReport(value=res.value, rounds=res.rounds)

    def min_degree(self) -> MonitorReport:
        degrees = [len(a) for a in self.adj]
        res = self.prims.aggregate(degrees, min)
        return MonitorReport(value=res.value, rounds=res.rounds)

    # ------------------------------------------------------------------
    def is_bipartite(self) -> MonitorReport:
        """Bipartiteness of the *local* network.

        Nodes 2-colour themselves by BFS-layer parity (``O(diam)`` local
        rounds charged as the BFS the overlay construction already ran),
        then aggregate one conflict bit: a monochromatic local edge
        witnesses an odd cycle.  Correct for connected graphs by the
        standard argument (BFS-layer colouring is proper iff the graph
        is bipartite).
        """
        from repro.graphs.analysis import bfs_distances

        dist = bfs_distances(self.adj, self.tree.root)
        if (dist < 0).any():
            raise ValueError("monitoring requires a connected network")
        colour = dist % 2
        conflict = [
            any(colour[u] == colour[v] for u in self.adj[v]) for v in range(len(self.adj))
        ]
        res = self.prims.aggregate(conflict, lambda a, b: a or b)
        bfs_rounds = int(dist.max())
        return MonitorReport(value=not res.value, rounds=bfs_rounds + res.rounds)

    # ------------------------------------------------------------------
    def all_monitors(self) -> dict[str, MonitorReport]:
        """Run the full monitoring battery (one aggregation each)."""
        return {
            "node_count": self.node_count(),
            "edge_count": self.edge_count(),
            "max_degree": self.max_degree(),
            "min_degree": self.min_degree(),
            "is_bipartite": self.is_bipartite(),
        }
