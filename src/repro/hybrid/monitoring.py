"""Network monitoring on the overlay (§1.4, via [27]).

The paper's second corollary: *"Every monitoring problem presented in
[27] can be solved in time O(log n), w.h.p., instead of O(log² n)
deterministically.  These problems include monitoring the graph's node
and edge count [and] its bipartiteness…"*

Once a well-formed tree exists over the network, each monitoring query is
one aggregation (``O(log n)`` rounds) over locally computable inputs:

- **node count** — sum of ones;
- **edge count** — sum of degrees, halved;
- **degree extremes** — max/min aggregation;
- **bipartiteness** — 2-colour by BFS-layer parity (already known from
  the overlay construction's BFS), then aggregate a single conflict bit
  over the *local* edges.

Every monitor returns the measured value and its round charge; the X2
bench compares the totals against the deterministic ``O(log² n)``
baseline of [27] (represented by the supernode-merging round cost, since
[27] runs on that machinery).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bfs import build_bfs_forest
from repro.core.child_sibling import RootedTree
from repro.core.primitives import TreePrimitives
from repro.graphs.analysis import adjacency_sets

__all__ = ["MonitorReport", "NetworkMonitor"]


@dataclass
class MonitorReport:
    """One monitoring query's answer and cost."""

    value: object
    rounds: int


class NetworkMonitor:
    """Monitoring queries over a graph with an established overlay tree.

    Parameters
    ----------
    graph:
        The monitored network (local edges).
    tree:
        A well-formed tree over the same nodes (from the Theorem 1.1
        pipeline); if omitted, a BFS tree of ``graph`` is used — the
        round charges then reflect that tree's height.
    """

    def __init__(self, graph, tree: RootedTree | None = None) -> None:
        self.adj = adjacency_sets(graph)
        if tree is None:
            bfs = build_bfs_forest(self.adj)
            if len(bfs.roots) != 1:
                raise ValueError("monitoring requires a connected network")
            tree = RootedTree(root=bfs.roots[0], parent=bfs.parent.copy())
        if tree.n != len(self.adj):
            raise ValueError("tree and graph disagree on the node count")
        self.tree = tree
        self.prims = TreePrimitives(tree)

    # ------------------------------------------------------------------
    def node_count(self) -> MonitorReport:
        """Exact number of live nodes."""
        res = self.prims.count_nodes()
        return MonitorReport(value=res.value, rounds=res.rounds)

    def edge_count(self) -> MonitorReport:
        """Exact number of local edges (sum of degrees / 2)."""
        degrees = [len(a) for a in self.adj]
        res = self.prims.aggregate(degrees, lambda a, b: a + b)
        return MonitorReport(value=res.value // 2, rounds=res.rounds)

    def max_degree(self) -> MonitorReport:
        degrees = [len(a) for a in self.adj]
        res = self.prims.aggregate(degrees, max)
        return MonitorReport(value=res.value, rounds=res.rounds)

    def min_degree(self) -> MonitorReport:
        degrees = [len(a) for a in self.adj]
        res = self.prims.aggregate(degrees, min)
        return MonitorReport(value=res.value, rounds=res.rounds)

    # ------------------------------------------------------------------
    def is_bipartite(self) -> MonitorReport:
        """Bipartiteness of the *local* network.

        Nodes 2-colour themselves by BFS-layer parity (``O(diam)`` local
        rounds charged as the BFS the overlay construction already ran),
        then aggregate one conflict bit: a monochromatic local edge
        witnesses an odd cycle.  Correct for connected graphs by the
        standard argument (BFS-layer colouring is proper iff the graph
        is bipartite).
        """
        from repro.graphs.analysis import bfs_distances

        dist = bfs_distances(self.adj, self.tree.root)
        if (dist < 0).any():
            raise ValueError("monitoring requires a connected network")
        colour = dist % 2
        conflict = [
            any(colour[u] == colour[v] for u in self.adj[v]) for v in range(len(self.adj))
        ]
        res = self.prims.aggregate(conflict, lambda a, b: a or b)
        bfs_rounds = int(dist.max())
        return MonitorReport(value=not res.value, rounds=bfs_rounds + res.rounds)

    # ------------------------------------------------------------------
    def all_monitors(self) -> dict[str, MonitorReport]:
        """Run the full monitoring battery (one aggregation each)."""
        return {
            "node_count": self.node_count(),
            "edge_count": self.edge_count(),
            "max_degree": self.max_degree(),
            "min_degree": self.min_degree(),
            "is_bipartite": self.is_bipartite(),
        }
