"""Hybrid-model applications (Section 4 of the paper).

- :mod:`repro.hybrid.rapid_sampling` — Lemma 4.2 walk stitching;
- :mod:`repro.hybrid.overlay` — Theorem 4.1 hybrid ``CreateExpander``;
- :mod:`repro.hybrid.spanner` — Elkin–Neiman spanner (§4.2 step 1);
- :mod:`repro.hybrid.degree_reduction` — edge delegation (§4.2 step 2);
- :mod:`repro.hybrid.components` — Theorem 1.2 connected components;
- :mod:`repro.hybrid.spanning_tree` — Theorem 1.3 walk unwinding;
- :mod:`repro.hybrid.biconnectivity` — Theorem 1.4 Tarjan–Vishkin;
- :mod:`repro.hybrid.mis` — Theorem 1.5 MIS via shattering.
"""

from repro.hybrid.rapid_sampling import StitchedWalkResult, stitched_walks
from repro.hybrid.spanner import SpannerResult, build_spanner
from repro.hybrid.degree_reduction import ReducedGraph, reduce_degree
from repro.hybrid.overlay import (
    HybridExpanderBuilder,
    HybridOverlayParams,
    HybridOverlayResult,
    build_hybrid_overlay,
)
from repro.hybrid.components import (
    HYBRID_TIERS,
    ComponentForest,
    ComponentsResult,
    connected_components_hybrid,
    well_formed_forest,
)
from repro.hybrid.soa_pipeline import (
    CSRAdjacency,
    ReducedColumns,
    SoAHybridLedger,
    SoASpannerClass,
    SpannerColumns,
    build_hybrid_overlay_soa,
    build_spanner_soa,
    connected_components_hybrid_soa,
    reduce_degree_soa,
)
from repro.hybrid.spanning_tree import (
    SpanningTreeResult,
    UnwindBudgetExceeded,
    spanning_tree_hybrid,
)
from repro.hybrid.biconnectivity import (
    BiconnectivityResult,
    biconnected_components_hybrid,
    tarjan_vishkin_rules,
)
from repro.hybrid.monitoring import MonitorReport, NetworkMonitor
from repro.hybrid.mis import (
    GhaffariResult,
    MetivierResult,
    MISResult,
    ghaffari_stage,
    metivier_mis,
    mis_hybrid,
    verify_mis,
)

__all__ = [
    "StitchedWalkResult",
    "stitched_walks",
    "SpannerResult",
    "build_spanner",
    "ReducedGraph",
    "reduce_degree",
    "HybridExpanderBuilder",
    "HybridOverlayParams",
    "HybridOverlayResult",
    "build_hybrid_overlay",
    "HYBRID_TIERS",
    "ComponentForest",
    "ComponentsResult",
    "connected_components_hybrid",
    "well_formed_forest",
    "CSRAdjacency",
    "ReducedColumns",
    "SoAHybridLedger",
    "SoASpannerClass",
    "SpannerColumns",
    "build_hybrid_overlay_soa",
    "build_spanner_soa",
    "connected_components_hybrid_soa",
    "reduce_degree_soa",
    "SpanningTreeResult",
    "UnwindBudgetExceeded",
    "spanning_tree_hybrid",
    "BiconnectivityResult",
    "biconnected_components_hybrid",
    "tarjan_vishkin_rules",
    "GhaffariResult",
    "MetivierResult",
    "MISResult",
    "ghaffari_stage",
    "metivier_mis",
    "mis_hybrid",
    "verify_mis",
    "MonitorReport",
    "NetworkMonitor",
]
