"""Rapid sampling — stitching short walks into long ones (Lemma 4.2).

The hybrid variant of ``CreateExpander`` (Theorem 4.1) needs walks of
length ``ℓ = Θ(Λ²) = Θ(log² n)`` but may only spend ``O(log m + log log n)``
rounds.  Lemma 4.2 ([17, 9, 37]) simulates length-``ℓ`` walks in
``O(log ℓ)`` rounds by *stitching*:

1. every token performs ``s₀`` ordinary forwarding steps (``s₀ = 2`` in
   the paper);
2. in each stitching round, every node randomly splits the tokens it
   currently holds into **red** and **blue** halves and pairs each red
   token with a distinct blue token.  The red token teleports to the blue
   token's *origin* and the blue token is discarded.

Because the walk graph is regular, reversing a random walk preserves its
distribution, so a red walk (``o₁ → v``) concatenated with a reversed blue
walk (``v → o₂``) is a uniform walk of doubled length from ``o₁`` —
discarding the blue token keeps the surviving walks independent.  A token
survives all ``log₂(ℓ/s₀)`` stitching rounds with probability
``≈ s₀/ℓ``, so nodes start ``(ℓ/s₀)``-fold more tokens than they need.

Full node/edge traces are maintained through the stitching (the reversed
blue trace is appended to the red trace) so the spanning-tree unwinding of
Theorem 1.3 works unchanged on stitched walks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.walks import run_token_walks
from repro.graphs.portgraph import PortGraph
from repro.net.vectorops import group_argsort

__all__ = ["StitchedWalkResult", "stitched_walks"]


@dataclass
class StitchedWalkResult:
    """Surviving stitched walks.

    ``origins[k] → endpoints[k]`` are distributed as independent
    ``length``-step random walks; ``rounds`` counts the communication
    rounds used (``s₀`` plain steps plus one per stitching phase), which
    is ``O(log ℓ)``.
    """

    origins: np.ndarray
    endpoints: np.ndarray
    length: int
    rounds: int
    max_load_per_round: np.ndarray
    node_traces: np.ndarray | None = None
    edge_traces: np.ndarray | None = None

    @property
    def num_tokens(self) -> int:
        return int(self.origins.shape[0])


def stitched_walks(
    graph: PortGraph,
    tokens_per_node: int,
    target_length: int,
    rng: np.random.Generator,
    initial_steps: int = 2,
    record_traces: bool = False,
) -> StitchedWalkResult:
    """Sample walks of ``target_length`` steps in ``O(log ℓ)`` rounds.

    ``target_length`` must equal ``initial_steps · 2^k`` for integer
    ``k ≥ 0`` (lengths double per stitching round).  Each node starts
    ``tokens_per_node`` tokens; roughly ``tokens_per_node · initial_steps
    / target_length`` survive per node on average, so callers oversample
    accordingly.

    Raises
    ------
    ValueError
        If ``target_length`` is not ``initial_steps`` times a power of 2.
    """
    if initial_steps < 1:
        raise ValueError("initial_steps must be >= 1")
    if target_length < initial_steps:
        raise ValueError("target_length must be >= initial_steps")
    ratio = target_length // initial_steps
    if initial_steps * ratio != target_length or ratio & (ratio - 1):
        raise ValueError(
            f"target_length must be initial_steps * 2^k, got "
            f"{target_length} with initial_steps={initial_steps}"
        )
    num_stitches = ratio.bit_length() - 1

    walk = run_token_walks(
        graph,
        tokens_per_node=tokens_per_node,
        length=initial_steps,
        rng=rng,
        record_traces=record_traces,
    )
    origins = walk.origins
    positions = walk.endpoints
    node_traces = walk.node_traces
    edge_traces = walk.edge_traces
    loads = [walk.max_load_per_round]

    for _ in range(num_stitches):
        reds, blues = _pair_tokens(positions, rng)
        if record_traces:
            red_nodes = node_traces[reds]
            blue_nodes = node_traces[blues, ::-1]
            # The blue trace starts where the red one ends; drop the
            # duplicated junction node.
            node_traces = np.concatenate([red_nodes, blue_nodes[:, 1:]], axis=1)
            edge_traces = np.concatenate(
                [edge_traces[reds], edge_traces[blues, ::-1]], axis=1
            )
        positions = origins[blues]
        origins = origins[reds]
        load = (
            np.bincount(positions, minlength=graph.n).max()
            if positions.size
            else 0
        )
        loads.append(np.array([load], dtype=np.int64))

    return StitchedWalkResult(
        origins=origins,
        endpoints=positions,
        length=target_length,
        rounds=initial_steps + num_stitches,
        max_load_per_round=np.concatenate(loads),
        node_traces=node_traces if record_traces else None,
        edge_traces=edge_traces if record_traces else None,
    )


def _pair_tokens(
    positions: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Randomly pair tokens resident at the same node.

    Returns ``(red_indices, blue_indices)`` of equal length; position
    ``k`` of the two arrays forms one red/blue pair (both tokens sit at
    the same node).  Within each node's token group the red/blue split and
    the pairing are uniformly random; odd tokens out are discarded, as in
    the paper.
    """
    m = positions.shape[0]
    if m == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    perm = rng.permutation(m)
    order = perm[group_argsort(positions[perm], int(positions.max()) + 1)]
    sorted_pos = positions[order]
    # Group bounds by run lengths of the sorted column (the former
    # whole-column double searchsorted, at a fraction of the cost).
    starts = np.flatnonzero(np.concatenate([[True], sorted_pos[1:] != sorted_pos[:-1]]))
    counts = np.diff(np.append(starts, m))
    rank = np.arange(m, dtype=np.int64) - np.repeat(starts, counts)
    pairs = np.repeat(counts // 2, counts)
    reds = order[rank < pairs]
    blues = order[(rank >= pairs) & (rank < 2 * pairs)]
    return reds, blues
