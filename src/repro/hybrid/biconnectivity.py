"""Biconnected components via Tarjan–Vishkin (Theorem 1.4).

The parallel biconnectivity algorithm of Tarjan and Vishkin [53], adapted
to the hybrid model in §4.4 of the paper.  Given a connected graph ``G``:

1. **Spanning tree** ``T`` (Theorem 1.3, or a BFS tree for the fast
   path), rooted, with preorder labels ``l(v)`` and subtree sizes
   ``nd(v)`` from the Euler tour (Step 1–2);
2. **Subtree aggregates** ``low(v)/high(v)``: the min/max preorder label
   over ``v``'s descendants *and their non-tree neighbours* — segment
   min/max over the preorder interval, computed with the ``2^k``-span
   shortcut aggregates of Lemma 4.12 (realised by
   :class:`repro.graphs.rmq.SparseTable`);
3. **Helper graph** ``G''`` on the tree edges (each non-root node ``v``
   stands for its parent edge), with Tarjan–Vishkin's rules:

   - *Rule 1*: non-tree edge ``{v, w}``, neither endpoint an ancestor of
     the other → join the parent edges of ``v`` and ``w``;
   - *Rule 2*: tree edge ``(w, v)`` (``v = parent(w)``, not the root):
     if ``low(w) < l(v)`` or ``high(w) ≥ l(v) + nd(v)``, join the parent
     edges of ``v`` and ``w``;

4. **Connected components of** ``G''`` → biconnected component of every
   tree edge (Theorem 1.2's machinery in the paper; a union-find realises
   the same partition here — the distributed variant is exercised
   end-to-end by the integration tests through
   :func:`repro.hybrid.components.connected_components_hybrid`);
5. *Rule 3*: non-tree edge ``{v, w}`` with ``l(v) < l(w)`` joins the
   component of ``w``'s parent edge.

Cut vertices are the nodes whose incident edges span ≥ 2 biconnected
components; bridges are the components containing a single edge.  Both
are validated against networkx in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bfs import build_bfs_forest
from repro.core.child_sibling import RootedTree
from repro.core.euler import preorder_and_sizes
from repro.graphs.analysis import adjacency_sets, is_connected
from repro.graphs.rmq import SparseTable
from repro.graphs.unionfind import UnionFind
from repro.net.hybrid import HybridLedger

__all__ = ["BiconnectivityResult", "biconnected_components_hybrid", "tarjan_vishkin_rules"]


@dataclass
class BiconnectivityResult:
    """Biconnectivity structure of a connected graph.

    Attributes
    ----------
    edge_component:
        ``{(u, v) sorted tuple → component id}`` for every edge of ``G``.
    components:
        ``component id → sorted list of edges``.
    cut_vertices:
        Articulation points.
    bridges:
        Bridge edges (single-edge biconnected components).
    is_biconnected:
        True iff the whole graph forms one biconnected component.
    labels / nd / low / high:
        The per-node Tarjan–Vishkin quantities (preorder label, subtree
        size, subtree-min, subtree-max) — exposed for the experiments.
    """

    edge_component: dict[tuple[int, int], int]
    components: dict[int, list[tuple[int, int]]]
    cut_vertices: set[int]
    bridges: set[tuple[int, int]]
    is_biconnected: bool
    labels: np.ndarray
    nd: np.ndarray
    low: np.ndarray
    high: np.ndarray
    tree: RootedTree
    ledger: HybridLedger = field(default_factory=HybridLedger)


def _subtree_aggregates(
    tree: RootedTree,
    labels: np.ndarray,
    nd: np.ndarray,
    adj: list[set[int]],
) -> tuple[np.ndarray, np.ndarray]:
    """``low``/``high`` of Tarjan–Vishkin Step 2.

    ``low(v) = min { l(u) : u ∈ D(v) ∪ N_nontree(D(v)) }`` and dually for
    ``high``.  Per-node base values combine the node's own label with its
    non-tree neighbours' labels; subtree aggregation is a range query
    over the preorder interval ``[l(v), l(v) + nd(v))``.
    """
    n = tree.n
    parent = tree.parent
    base_low = labels.astype(np.int64).copy()
    base_high = labels.astype(np.int64).copy()
    for v in range(n):
        for u in adj[v]:
            if parent[v] != u and parent[u] != v:  # non-tree edge
                if labels[u] < base_low[v]:
                    base_low[v] = labels[u]
                if labels[u] > base_high[v]:
                    base_high[v] = labels[u]

    # Order base values by preorder rank; subtree of v = ranks
    # [l(v)-1, l(v)-1+nd(v)).
    by_rank_low = np.empty(n, dtype=np.int64)
    by_rank_high = np.empty(n, dtype=np.int64)
    by_rank_low[labels - 1] = base_low
    by_rank_high[labels - 1] = base_high
    table_low = SparseTable(by_rank_low, op="min")
    table_high = SparseTable(by_rank_high, op="max")

    # One batched RMQ per table instead of 2n scalar queries; labels are
    # 1-based preorder ranks, so every interval is valid by construction
    # (nd >= 1 — no root sentinel reaches an index here).
    range_lo = labels.astype(np.int64) - 1
    range_hi = range_lo + nd.astype(np.int64)
    low = table_low.query_many(range_lo, range_hi)
    high = table_high.query_many(range_lo, range_hi)
    return low, high


def tarjan_vishkin_rules(
    tree: RootedTree,
    labels: np.ndarray,
    nd: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
    adj: list[set[int]],
) -> list[tuple[int, int]]:
    """Edges of the helper graph ``G''`` from rules 1 and 2.

    ``G''``'s nodes are the non-root nodes of ``T`` (each standing for its
    parent edge); the returned pairs ``(x, y)`` join the parent edges of
    ``x`` and ``y``.  Exposed separately so experiment E14 can check the
    rules against Figure 1 of the paper.
    """
    parent = tree.parent

    def is_ancestor(a: int, d: int) -> bool:
        return labels[a] <= labels[d] < labels[a] + nd[a]

    edges: list[tuple[int, int]] = []
    n = tree.n
    for v in range(n):
        for w in adj[v]:
            if v >= w or parent[v] == w or parent[w] == v:
                continue
            # Rule 1: non-tree edge between unrelated subtrees.
            if not is_ancestor(v, w) and not is_ancestor(w, v):
                edges.append((v, w))
    for w in range(n):
        v = int(parent[w])
        if v == w:  # w is the root: no parent edge
            continue
        if v == tree.root:  # v has no parent edge to join with
            continue
        # Rule 2: w's subtree escapes v's subtree via a non-tree edge.
        if low[w] < labels[v] or high[w] >= labels[v] + nd[v]:
            edges.append((v, w))
    return edges


def biconnected_components_hybrid(
    graph,
    rng: np.random.Generator | None = None,
    tree: RootedTree | None = None,
    tree_source: str = "walk",
) -> BiconnectivityResult:
    """Theorem 1.4: biconnected components, cut vertices, and bridges.

    Parameters
    ----------
    graph:
        Connected input graph.
    tree:
        Optional precomputed spanning tree (must span ``graph``).
    tree_source:
        ``"walk"`` uses the full Theorem 1.3 machinery (spanning tree by
        unwinding random walks); ``"bfs"`` uses a plain BFS tree (fast
        path for large sweeps — Step 1 is interchangeable).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    adj = adjacency_sets(graph)
    n = len(adj)
    if not is_connected(adj):
        raise ValueError("biconnectivity requires a connected graph")
    ledger = HybridLedger()

    if tree is None:
        if tree_source == "walk":
            from repro.hybrid.spanning_tree import spanning_tree_hybrid

            st = spanning_tree_hybrid(graph, rng=rng)
            ledger.merge(st.ledger, prefix="spanning_tree/")
            tree = RootedTree(root=st.root, parent=st.parent.copy())
        elif tree_source == "bfs":
            bfs = build_bfs_forest(adj)
            ledger.charge("bfs_tree", local_rounds=bfs.rounds)
            tree = RootedTree(root=bfs.roots[0], parent=bfs.parent.copy())
        else:
            raise ValueError("tree_source must be 'walk' or 'bfs'")

    labels, nd, rank_rounds = preorder_and_sizes(tree)
    ledger.charge("euler_labels", global_rounds=rank_rounds)
    low, high = _subtree_aggregates(tree, labels, nd, adj)
    ledger.charge("subtree_aggregates", global_rounds=rank_rounds)

    # G'' on tree edges: non-root node v stands for edge {v, parent(v)}.
    uf = UnionFind(n)
    for x, y in tarjan_vishkin_rules(tree, labels, nd, low, high, adj):
        uf.union(x, y)
    ledger.charge("helper_graph_components", global_rounds=rank_rounds)

    parent = tree.parent
    edge_component: dict[tuple[int, int], int] = {}
    for w in range(n):
        v = int(parent[w])
        if v != w:
            edge_component[(min(v, w), max(v, w))] = uf.find(w)
    # Rule 3: attach non-tree edges to the deeper endpoint's parent edge.
    for v in range(n):
        for w in adj[v]:
            if v >= w or parent[v] == w or parent[w] == v:
                continue
            deeper = v if labels[v] > labels[w] else w
            edge_component[(v, w)] = uf.find(deeper)

    components: dict[int, list[tuple[int, int]]] = {}
    for edge, comp in edge_component.items():
        components.setdefault(comp, []).append(edge)
    for comp in components.values():
        comp.sort()

    incident: dict[int, set[int]] = {v: set() for v in range(n)}
    for (a, b), comp in edge_component.items():
        incident[a].add(comp)
        incident[b].add(comp)
    cut_vertices = {v for v, comps in incident.items() if len(comps) >= 2}
    bridges = {
        edges[0] for edges in components.values() if len(edges) == 1
    }
    return BiconnectivityResult(
        edge_component=edge_component,
        components=components,
        cut_vertices=cut_vertices,
        bridges=bridges,
        is_biconnected=len(components) <= 1,
        labels=labels,
        nd=nd,
        low=low,
        high=high,
        tree=tree,
        ledger=ledger,
    )
