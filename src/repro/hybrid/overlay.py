"""Hybrid-model ``CreateExpander`` (Theorem 4.1).

Differences from the NCC0 algorithm of Section 2 (see §4.1):

- the input may have degree up to ``O(log n)`` (e.g. the reduced graph
  ``H`` of §4.2), so edges are **not** copied ``Λ`` times — preparation
  only pads self-loops to degree ``Δ``;
- walks are **longer** (``ℓ = Θ(Λ²)`` in the theory; calibrated here),
  which regrows the minimum cut regardless of its initial size and gains a
  ``Θ(√ℓ)``-factor of conductance per evolution, so only
  ``O(log m / log log n)`` evolutions are needed;
- long walks are simulated in ``O(log ℓ)`` rounds via **rapid sampling**
  (:mod:`repro.hybrid.rapid_sampling`); each node sends its surviving
  tokens home, and the *origin* selects up to ``Δ/8`` of them to turn
  into edges (the endpoint cap of ``3Δ/8`` still applies so the result
  stays ``Δ``-regular and lazy).

The builder accepts disconnected inputs: walks never leave a component, so
every component independently converges to an expander — which is exactly
what the connected-components application (Theorem 1.2) requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.benign import BaseEdge
from repro.core.expander import EdgeRegistry, EvolutionStats, OverlayEdge, _accept_tokens
from repro.core.walks import run_token_walks
from repro.graphs.portgraph import PortGraph
from repro.graphs.spectral import spectral_gap
from repro.hybrid.rapid_sampling import stitched_walks
from repro.net.hybrid import HybridLedger

__all__ = ["HybridOverlayParams", "HybridOverlayResult", "HybridExpanderBuilder", "build_hybrid_overlay"]


@dataclass(frozen=True)
class HybridOverlayParams:
    """Parameters of the hybrid overlay construction.

    ``ell`` must be ``2 · 2^k`` when stitching is enabled (walk lengths
    double per stitching round, starting from 2 plain steps).
    """

    delta: int
    ell: int
    num_evolutions: int
    use_stitching: bool = True

    def __post_init__(self) -> None:
        if self.delta <= 0 or self.delta % 8 != 0:
            raise ValueError("delta must be a positive multiple of 8")
        if self.ell < 2:
            raise ValueError("ell must be >= 2")
        if self.use_stitching:
            ratio = self.ell // 2
            if 2 * ratio != self.ell or ratio & (ratio - 1):
                raise ValueError("stitched ell must be 2 * 2^k")

    @property
    def tokens_per_node(self) -> int:
        return self.delta // 8

    @property
    def accept_cap(self) -> int:
        return 3 * self.delta // 8

    @property
    def oversample(self) -> int:
        """Stitching start-count multiplier ``ℓ/2`` (survival is ``2/ℓ``)."""
        return max(1, self.ell // 2)

    @classmethod
    def recommended(
        cls,
        n: int,
        max_degree: int,
        m_bound: int | None = None,
        use_stitching: bool = True,
    ) -> "HybridOverlayParams":
        """Calibrated hybrid parameters (DESIGN.md §5).

        ``Δ`` is ``Θ(log n)`` with room for the input's edges (at most
        half the ports); ``ℓ = 64`` (the ``Θ(Λ²)`` walk length at
        practical sizes, power-of-two for stitching); evolutions scale
        with the component bound ``m``.
        """
        if n < 2:
            raise ValueError("need at least 2 nodes")
        log_n = max(1, math.ceil(math.log2(n)))
        m = max(2, m_bound if m_bound is not None else n)
        log_m = max(1, math.ceil(math.log2(m)))
        delta = max(32, 8 * log_n, 2 * max_degree)
        delta = ((delta + 7) // 8) * 8
        return cls(
            delta=delta,
            ell=64,
            num_evolutions=log_m + 4,
            use_stitching=use_stitching,
        )


@dataclass
class HybridOverlayResult:
    """Output of the hybrid overlay construction."""

    final_graph: PortGraph
    history: list[EvolutionStats]
    levels: list[PortGraph]
    base_registry: list[BaseEdge]
    level_registries: list[EdgeRegistry]
    params: HybridOverlayParams
    ledger: HybridLedger = field(default_factory=HybridLedger)


class HybridExpanderBuilder:
    """Evolution driver for the hybrid variant.

    The level/registry bookkeeping matches
    :class:`repro.core.expander.ExpanderBuilder`, so the spanning-tree
    unwinding (Theorem 1.3) consumes either interchangeably.
    """

    def __init__(
        self,
        base_graph: PortGraph,
        params: HybridOverlayParams,
        rng: np.random.Generator,
        record_traces: bool = False,
        ledger: HybridLedger | None = None,
    ) -> None:
        if base_graph.delta != params.delta:
            raise ValueError("graph degree must equal params.delta")
        self.params = params
        self.rng = rng
        self.record_traces = record_traces
        self.levels: list[PortGraph] = [base_graph]
        self.level_registries: list[EdgeRegistry] = []
        self.history: list[EvolutionStats] = []
        # Any HybridLedger-compatible accumulator works here; the SoA
        # pipeline injects its columnar SoAHybridLedger.
        self.ledger = ledger if ledger is not None else HybridLedger()

    @property
    def current(self) -> PortGraph:
        return self.levels[-1]

    def step(self) -> EvolutionStats:
        """One hybrid evolution: long walks (stitched or plain), origin
        selection, endpoint cap, rebuild."""
        params = self.params
        graph = self.current
        n = graph.n

        if params.use_stitching:
            walk = stitched_walks(
                graph,
                tokens_per_node=params.tokens_per_node * params.oversample,
                target_length=params.ell,
                rng=self.rng,
                record_traces=self.record_traces,
            )
            walk_rounds = walk.rounds
        else:
            walk = run_token_walks(
                graph,
                tokens_per_node=params.tokens_per_node,
                length=params.ell,
                rng=self.rng,
                record_traces=self.record_traces,
            )
            walk_rounds = params.ell

        # Surviving tokens are reported back to their origins (§4.1); the
        # origin keeps at most Δ/8 of them, then endpoints answer at most
        # 3Δ/8 — both caps keep the rebuilt graph Δ-regular and lazy.
        by_origin = _accept_tokens(walk.origins, params.tokens_per_node, self.rng)
        sub_endpoints = walk.endpoints[by_origin]
        by_endpoint_local = _accept_tokens(sub_endpoints, params.accept_cap, self.rng)
        accepted = by_origin[by_endpoint_local]

        origins_acc = walk.origins[accepted]
        endpoints_acc = walk.endpoints[accepted]

        traces = None
        if self.record_traces:
            traces = [
                (walk.node_traces[i].copy(), walk.edge_traces[i].copy())
                for i in accepted.tolist()
            ]
        registry = EdgeRegistry(origins_acc, endpoints_acc, traces)

        # Rescue rule (documented deviation, DESIGN.md §2.9): on very
        # small components, *all* of a node's surviving tokens may have
        # returned home, leaving it with only loop edges and silently
        # disconnecting it.  A node that would end an evolution with zero
        # real ports re-introduces itself to its previous neighbours (a
        # purely local decision, one extra round).  The rescue edge's
        # provenance is the previous-level edge it duplicates, so the
        # spanning-tree unwinding is unaffected.  W.h.p. the rule never
        # fires above tiny component sizes.
        registry.extend(self._rescue_isolated(graph, origins_acc, endpoints_acc))

        new_graph = PortGraph.from_edge_multiset(
            n=n,
            delta=params.delta,
            endpoints_a=registry.origins,
            endpoints_b=registry.endpoints,
            edge_ids=np.arange(len(registry), dtype=np.int64),
        )

        stats = EvolutionStats(
            iteration=len(self.history) + 1,
            tokens_started=int(walk.origins.shape[0]) if not params.use_stitching
            else n * params.tokens_per_node * params.oversample,
            tokens_accepted=int(accepted.shape[0]),
            tokens_dropped=int(walk.origins.shape[0]) - int(accepted.shape[0]),
            max_token_load=int(walk.max_load_per_round.max(initial=0)),
            distinct_edges=new_graph.num_unique_edges(),
        )
        self.levels.append(new_graph)
        self.level_registries.append(registry)
        self.history.append(stats)
        # Lemma 4.2: simulating m = Δℓ/16 walks of length ℓ needs
        # O(mℓ)-message capacity; +2 rounds to report home and answer.
        self.ledger.charge(
            f"evolution_{len(self.history)}",
            global_rounds=walk_rounds + 2,
            global_capacity=params.delta * params.ell,
        )
        return stats

    def _rescue_isolated(
        self,
        previous: PortGraph,
        origins_acc: np.ndarray,
        endpoints_acc: np.ndarray,
    ) -> list[OverlayEdge]:
        """Re-link nodes whose accepted tokens produced no real edge.

        Returns the extra edges' provenance entries (one step over the
        duplicated previous-level edge each).
        """
        n = previous.n
        real = np.zeros(n, dtype=np.int64)
        cross = origins_acc != endpoints_acc
        if cross.any():
            real += np.bincount(origins_acc[cross], minlength=n)
            real += np.bincount(endpoints_acc[cross], minlength=n)
        isolated = np.nonzero((real == 0) & (previous.real_degree() > 0))[0]
        entries: list[OverlayEdge] = []
        for v in isolated.tolist():
            seen: set[int] = set()
            for k in range(previous.delta):
                u = int(previous.ports[v, k])
                if u == v or u in seen:
                    continue
                seen.add(u)
                eid = int(previous.port_edge_ids[v, k]) if previous.port_edge_ids is not None else -1
                entries.append(
                    OverlayEdge(
                        origin=v,
                        endpoint=u,
                        node_trace=np.array([v, u], dtype=np.int64)
                        if self.record_traces
                        else None,
                        edge_trace=np.array([eid], dtype=np.int64)
                        if self.record_traces
                        else None,
                    )
                )
        return entries

    def run(
        self,
        num_evolutions: int | None = None,
        gap_threshold: float | None = None,
        track_gap: bool = False,
    ) -> PortGraph:
        """Run the configured evolutions (optionally stopping early once
        the spectral gap reaches ``gap_threshold``)."""
        if num_evolutions is None:
            num_evolutions = self.params.num_evolutions
        want_gap = track_gap or gap_threshold is not None
        for _ in range(num_evolutions):
            stats = self.step()
            if want_gap:
                stats.spectral_gap = spectral_gap(self.current)
            if gap_threshold is not None and stats.spectral_gap >= gap_threshold:
                break
        return self.current


def _benign_from_bounded_degree(
    adj: list[set[int]], delta: int
) -> tuple[PortGraph, list[BaseEdge]]:
    """Hybrid preparation: edges copied into the free port slack,
    self-loops to Δ.

    §4.1 drops the ``Λ``-fold edge copying because the input degree may be
    ``Θ(log n)`` (copies would not fit).  For *sparser* inputs, though,
    the ports the copies would occupy sit idle as self-loops — so this
    preparation copies every edge ``max(1, Δ/(4·d_max))`` times, smoothly
    interpolating between the NCC0 preparation (many copies, strong cuts)
    and the paper's hybrid one (single copies).  This keeps sparse cuts
    (e.g. a line's single bridge edges) populated with enough crossing
    mass for the cut-regrowth argument to engage at practical walk
    lengths; see DESIGN.md §2.8.
    """
    n = len(adj)
    max_degree = max((len(a) for a in adj), default=0)
    copies = max(1, delta // (4 * max(1, max_degree)))
    registry: list[BaseEdge] = []
    ends_a: list[int] = []
    ends_b: list[int] = []
    for v in range(n):
        for u in sorted(adj[v]):
            if u > v:
                for _copy in range(copies):
                    registry.append(BaseEdge(u=v, v=u, source=(v, u)))
                    ends_a.append(v)
                    ends_b.append(u)
    graph = PortGraph.from_edge_multiset(
        n=n,
        delta=delta,
        endpoints_a=np.asarray(ends_a, dtype=np.int64),
        endpoints_b=np.asarray(ends_b, dtype=np.int64),
    )
    return graph, registry


def build_hybrid_overlay(
    graph,
    rng: np.random.Generator | None = None,
    params: HybridOverlayParams | None = None,
    record_traces: bool = False,
    m_bound: int | None = None,
    gap_threshold: float | None = None,
    track_gap: bool = False,
) -> HybridOverlayResult:
    """Theorem 4.1: build a hybrid overlay expander on a (possibly
    disconnected) bounded-degree graph.

    ``graph`` is anything :func:`repro.graphs.analysis.adjacency_sets`
    accepts; its degree should be ``O(log n)`` (use the spanner + degree
    reduction of §4.2 first otherwise — :mod:`repro.hybrid.components`
    composes all three).
    """
    from repro.graphs.analysis import adjacency_sets

    if rng is None:
        rng = np.random.default_rng(0)
    adj = adjacency_sets(graph)
    n = len(adj)
    max_degree = max((len(a) for a in adj), default=0)
    if params is None:
        params = HybridOverlayParams.recommended(n, max_degree, m_bound=m_bound)
    if max_degree > params.delta // 2:
        raise ValueError(
            f"input degree {max_degree} exceeds delta/2 = {params.delta // 2}; "
            "reduce the degree first (repro.hybrid.degree_reduction)"
        )

    base, base_registry = _benign_from_bounded_degree(adj, params.delta)
    builder = HybridExpanderBuilder(base, params, rng, record_traces=record_traces)
    builder.run(gap_threshold=gap_threshold, track_gap=track_gap)
    return HybridOverlayResult(
        final_graph=builder.current,
        history=builder.history,
        levels=builder.levels,
        base_registry=base_registry,
        level_registries=builder.level_registries,
        params=params,
        ledger=builder.ledger,
    )
