"""Maximal independent set via shattering (Theorem 1.5).

The paper's MIS algorithm runs in ``O(log d + log log n)`` hybrid rounds:

1. **Shattering** (§4.5 Step 1): run Ghaffari's weak-MIS algorithm [22]
   for ``O(log d)`` CONGEST rounds.  Each node maintains a *desire level*
   ``p_t(v)`` (start ``1/2``): it marks itself with probability
   ``p_t(v)``, joins the MIS if no undecided neighbour is simultaneously
   marked, and halves/doubles its desire level according to the
   *effective degree* ``Σ_{u ∈ N(v)} p_t(u)``.  Afterwards the undecided
   nodes form small isolated components w.h.p.
2. **Per-component overlays** (Step 2): well-formed trees on every
   undecided component via Theorem 1.2 — ``O(log m + log log n)`` rounds
   for components of size ``m``.
3. **Parallel Métivier executions** (Step 3): ``Θ(log n)`` independent
   executions of the single-bit MIS algorithm of Métivier et al. [44]
   run concurrently on each component (one random bit per edge per round
   each); every execution reports its finish round to the component root
   through the tree, the root broadcasts the index of the earliest
   finisher, and all nodes adopt that execution's answer.  At least one
   execution finishes within ``O(log m)`` rounds w.h.p. (median runtime
   plus Markov + independent repetition).

The module also exposes the two classical building blocks —
:func:`ghaffari_stage` and :func:`metivier_mis` — as standalone MIS
solvers used for baselines and differential tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.graphs.analysis import adjacency_sets, connected_components
from repro.net.hybrid import HybridLedger

__all__ = [
    "GhaffariResult",
    "MetivierResult",
    "MISResult",
    "ghaffari_stage",
    "metivier_mis",
    "mis_hybrid",
    "verify_mis",
]

UNDECIDED, IN_MIS, DOMINATED = 0, 1, 2


@dataclass
class GhaffariResult:
    """Outcome of the shattering stage."""

    state: np.ndarray  # UNDECIDED / IN_MIS / DOMINATED per node
    rounds: int

    def undecided(self) -> list[int]:
        return [v for v, s in enumerate(self.state.tolist()) if s == UNDECIDED]


def ghaffari_stage(
    adj: list[set[int]],
    num_rounds: int,
    rng: np.random.Generator,
) -> GhaffariResult:
    """Run Ghaffari's desire-level MIS dynamics for ``num_rounds`` rounds.

    Implements the algorithm of [22]: ``p_0(v) = 1/2``;
    ``p_{t+1}(v) = p_t(v)/2`` if the effective degree ``Σ p_t(u)`` over
    undecided neighbours is ``≥ 2``, else ``min(2 p_t(v), 1/2)``.  A
    marked node with no simultaneously marked undecided neighbour joins
    the MIS; its neighbours become dominated.
    """
    n = len(adj)
    neighbors = [
        np.fromiter(sorted(a), dtype=np.int64) if a else np.empty(0, np.int64)
        for a in adj
    ]
    p = np.full(n, 0.5)
    # Per-node state codes, not a message lane; int8 is deliberate.
    state = np.full(n, UNDECIDED, dtype=np.int8)  # repro-lint: disable=RL303

    for _ in range(num_rounds):
        undecided = state == UNDECIDED
        if not undecided.any():
            break
        marked = undecided & (rng.random(n) < p)
        joined: list[int] = []
        for v in np.nonzero(marked)[0].tolist():
            nb = neighbors[v]
            if nb.size and marked[nb].any():
                continue
            joined.append(v)
        for v in joined:
            state[v] = IN_MIS
            nb = neighbors[v]
            if nb.size:
                dominated = nb[state[nb] == UNDECIDED]
                state[dominated] = DOMINATED
        undecided = state == UNDECIDED
        eff = np.zeros(n)
        for v in np.nonzero(undecided)[0].tolist():
            nb = neighbors[v]
            if nb.size:
                mask = state[nb] == UNDECIDED
                eff[v] = p[nb[mask]].sum()
        shrink = undecided & (eff >= 2.0)
        grow = undecided & (eff < 2.0)
        p[shrink] /= 2.0
        p[grow] = np.minimum(2.0 * p[grow], 0.5)
    return GhaffariResult(state=state, rounds=num_rounds)


@dataclass
class MetivierResult:
    """One Métivier et al. execution on a node subset."""

    in_mis: set[int]
    rounds: int


def metivier_mis(
    adj: list[set[int]],
    nodes: list[int],
    rng: np.random.Generator,
    max_rounds: int = 10_000,
) -> MetivierResult:
    """The single-bit randomised MIS of Métivier et al. [44] on the
    subgraph induced by ``nodes``.

    Each round every undecided node draws a random rank; local minima
    join the MIS and eliminate their neighbours.  Expected ``O(log k)``
    rounds on ``k`` nodes (half the edges disappear per round in
    expectation).
    """
    node_set = set(nodes)
    undecided = set(nodes)
    in_mis: set[int] = set()
    rounds = 0
    while undecided:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("Metivier execution failed to terminate")
        # Draw ranks in ascending node order: iterating the set directly
        # would couple the RNG stream to hash order, which CPython only
        # happens to make reproducible for small dense ints.
        order = sorted(undecided)
        rank = {v: rng.random() for v in order}
        joiners = [
            v
            for v in order
            if all(
                rank[v] < rank[u]
                for u in adj[v]
                if u in undecided and u in node_set
            )
        ]
        for v in joiners:
            in_mis.add(v)
        eliminated = set(joiners)
        for v in joiners:
            eliminated.update(u for u in adj[v] if u in undecided)
        undecided -= eliminated
    return MetivierResult(in_mis=in_mis, rounds=rounds)


@dataclass
class MISResult:
    """Full Theorem 1.5 outcome."""

    in_mis: set[int]
    shattering_rounds: int
    component_sizes: list[int]
    winner_rounds: dict[int, int]  # component label -> winning execution's rounds
    num_executions: int
    ledger: HybridLedger = field(default_factory=HybridLedger)


def mis_hybrid(
    graph,
    rng: np.random.Generator | None = None,
    shatter_rounds: int | None = None,
    num_executions: int | None = None,
    build_overlays: bool = False,
) -> MISResult:
    """Theorem 1.5: MIS in ``O(log d + log log n)`` hybrid rounds.

    Parameters
    ----------
    graph:
        Input graph (any degree; treated as undirected).
    shatter_rounds:
        Ghaffari rounds; defaults to ``4·⌈log₂(d + 2)⌉ + 4`` — the
        calibrated ``O(log d)``.
    num_executions:
        Parallel Métivier executions per component; defaults to
        ``⌈log₂ n⌉ + 1`` (the paper's ``Θ(log n)``).
    build_overlays:
        Also run the Theorem 1.2 machinery on the undecided components
        (exercises the real overlay code path and charges its rounds;
        off by default because the aggregation cost is the tree height,
        which is already known to be ``O(log m + log log n)``).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    adj = adjacency_sets(graph)
    n = len(adj)
    if n == 0:
        return MISResult(set(), 0, [], {}, 0)
    d = max((len(a) for a in adj), default=0)
    if shatter_rounds is None:
        shatter_rounds = 4 * math.ceil(math.log2(d + 2)) + 4
    if num_executions is None:
        num_executions = max(1, math.ceil(math.log2(max(2, n)))) + 1
    ledger = HybridLedger()

    shatter = ghaffari_stage(adj, shatter_rounds, rng)
    ledger.charge("ghaffari_shattering", local_rounds=shatter.rounds)
    in_mis = {v for v, s in enumerate(shatter.state.tolist()) if s == IN_MIS}

    undecided = shatter.undecided()
    undecided_set = set(undecided)
    sub_adj: list[set[int]] = [set() for _ in range(n)]
    for v in undecided:
        sub_adj[v] = {u for u in adj[v] if u in undecided_set}
    # connected_components runs over all n nodes; decided nodes appear as
    # empty singletons and are filtered out here.
    comps = [c for c in connected_components(sub_adj) if c and c[0] in undecided_set]
    component_sizes = sorted((len(c) for c in comps), reverse=True)

    if build_overlays and undecided:
        from repro.hybrid.components import connected_components_hybrid

        mapping = {v: i for i, v in enumerate(sorted(undecided))}
        induced: list[set[int]] = [set() for _ in range(len(mapping))]
        for v in undecided:
            for u in sub_adj[v]:
                induced[mapping[v]].add(mapping[u])
        m_bound = max(component_sizes) if component_sizes else 2
        comp_result = connected_components_hybrid(
            induced, rng=rng, m_bound=max(2, m_bound)
        )
        ledger.merge(comp_result.ledger, prefix="component_overlays/")
        tree_height = comp_result.forest.max_depth()
    else:
        biggest = max(component_sizes, default=1)
        tree_height = max(1, math.ceil(math.log2(biggest + 1)))
        ledger.charge(
            "component_overlays(analytic)",
            global_rounds=max(1, math.ceil(math.log2(max(2, biggest))))
            + math.ceil(math.log2(math.log2(max(4, n)))),
            global_capacity=int(math.log2(max(2, n))) ** 3,
        )

    winner_rounds: dict[int, int] = {}
    slowest_winner = 0
    for comp in comps:
        best: MetivierResult | None = None
        for _exec in range(num_executions):
            result = metivier_mis(adj, comp, rng)
            if best is None or result.rounds < best.rounds:
                best = result
        winner_rounds[comp[0]] = best.rounds
        slowest_winner = max(slowest_winner, best.rounds)
        in_mis |= best.in_mis
    ledger.charge(
        "parallel_metivier",
        local_rounds=slowest_winner,
        global_rounds=2 * tree_height,
        global_capacity=num_executions,
    )

    return MISResult(
        in_mis=in_mis,
        shattering_rounds=shatter.rounds,
        component_sizes=component_sizes,
        winner_rounds=winner_rounds,
        num_executions=num_executions,
        ledger=ledger,
    )


def verify_mis(adj: list[set[int]], candidate: set[int]) -> bool:
    """True iff ``candidate`` is independent and maximal in ``adj``."""
    for v in candidate:
        if any(u in candidate for u in adj[v]):
            return False
    for v in range(len(adj)):
        if v not in candidate and not any(u in candidate for u in adj[v]):
            return False
    return True
