"""Degree reduction by edge delegation (§4.2, Step 2).

The spanner ``S(G)`` has ``O(log n)`` *out*degree but may still contain
nodes of high *in*degree.  Each node ``v`` therefore delegates its
incoming edges away: with in-neighbours ``w₁ < w₂ < … < w_k`` (id order),
``v`` keeps only the edge ``{v, w₁}`` and introduces ``w_{i-1} ↔ w_i`` for
every ``i > 1`` — a chain through its former in-neighbours, conceptually
the child–sibling trick of [4, 27] applied to arbitrary graphs.

The resulting graph ``H`` has degree ``O(log n)`` (one remaining incoming
edge plus at most two chain edges per outgoing spanner edge) and preserves
component structure.  Every chain edge remembers its *delegation centre*
``v``: the edge ``{w_{i-1}, w_i}`` is not an edge of ``G``, but the path
``w_{i-1} → v → w_i`` is — which is how the spanning-tree algorithm of
Theorem 1.3 maps ``H``-edges back to ``G``-edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hybrid.spanner import SpannerResult

__all__ = ["ReducedGraph", "reduce_degree"]


@dataclass
class ReducedGraph:
    """The bounded-degree graph ``H`` with provenance.

    Attributes
    ----------
    adj:
        Undirected adjacency of ``H``.
    delegation:
        ``frozenset({a, b}) → centre``: the node through which a chain
        edge must be expanded to obtain ``G``-edges; edges that exist in
        ``S(G)`` (hence in ``G``) map to ``None``.
    rounds:
        CONGEST rounds consumed (2: learn incoming edges, delegate).
    """

    adj: list[set[int]]
    delegation: dict[frozenset, int | None]
    rounds: int

    @property
    def n(self) -> int:
        return len(self.adj)

    def max_degree(self) -> int:
        return max((len(a) for a in self.adj), default=0)

    def expand_edge(self, a: int, b: int) -> list[tuple[int, int]]:
        """Oriented ``G``-edge path realising the ``H``-edge ``a → b``.

        Returns ``[(a, b)]`` for a genuine spanner edge, or
        ``[(a, centre), (centre, b)]`` for a delegated chain edge.
        """
        key = frozenset((a, b))
        centre = self.delegation.get(key)
        if centre is None:
            return [(a, b)]
        return [(a, centre), (centre, b)]


def reduce_degree(spanner: SpannerResult) -> ReducedGraph:
    """Apply the delegation step to a spanner.

    Every directed spanner edge ``(w, v)`` is consumed by the delegation
    at ``v``: it either survives as ``{w₁, v}`` (the smallest-id
    in-neighbour keeps its edge) or is replaced by a chain edge between
    consecutive in-neighbours.  Components are preserved: the chain plus
    the kept edge connect exactly the set ``{v} ∪ N_in(v)``, which the
    original star also connected.
    """
    n = len(spanner.out_edges)
    incoming: list[list[int]] = [[] for _ in range(n)]
    for w, targets in enumerate(spanner.out_edges):
        for v in targets:
            if v != w:
                incoming[v].append(w)

    adj: list[set[int]] = [set() for _ in range(n)]
    delegation: dict[frozenset, int | None] = {}

    def add_edge(a: int, b: int, centre: int | None) -> None:
        adj[a].add(b)
        adj[b].add(a)
        key = frozenset((a, b))
        # A genuine spanner edge always wins over a delegated realisation
        # of the same pair (expanding through a centre is never needed if
        # the edge exists in G itself).
        if centre is None:
            delegation[key] = None
        elif key not in delegation:
            delegation[key] = centre

    for v in range(n):
        in_nb = sorted(set(incoming[v]))
        if not in_nb:
            continue
        add_edge(v, in_nb[0], None)
        for prev, cur in zip(in_nb, in_nb[1:]):
            add_edge(prev, cur, v)

    return ReducedGraph(adj=adj, delegation=delegation, rounds=2)
