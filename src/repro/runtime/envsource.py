"""The one module allowed to read ``REPRO_*`` environment variables.

Every configuration knob of the execution stack flows through the
:class:`~repro.runtime.context.RunContext` precedence chain (explicit
kwarg > CLI > environment > default — contract C8 in
``docs/contracts.md``).  The *environment* step of that chain lives
here, and **only** here: repro-lint rule ``RL601`` forbids raw
``os.environ`` / ``os.getenv`` access to a ``REPRO_*`` key anywhere
outside ``src/repro/runtime/``, so config reads cannot re-scatter into
per-module sniffing (the pre-RunContext state of the codebase).

The helpers normalise exactly the conventions the scattered readers had
individually converged on:

- empty and whitespace-only values count as *unset* (``read_env``
  returns ``None``), so ``REPRO_ENGINE= python ...`` behaves like not
  setting the variable at all;
- flags follow the ``REPRO_SANITIZE`` convention: any value other than
  ``"0"`` (or unset) is true for default-false flags, and ``"0"`` is
  the only way to switch a default-true flag off
  (``REPRO_SOA_LAYOUT_REUSE=0``);
- integers fail loudly with the variable name and the offending value,
  never silently fall back.
"""

from __future__ import annotations

import os

__all__ = ["ENV_PREFIX", "env_flag", "env_int", "read_env"]

#: Every engine configuration variable shares this prefix; ``read_env``
#: rejects anything else so the RL601 boundary stays meaningful.
ENV_PREFIX = "REPRO_"


def read_env(name: str) -> str | None:
    """The raw value of one ``REPRO_*`` variable, or ``None`` when unset.

    Empty and whitespace-only values are normalised to ``None`` (unset);
    surrounding whitespace is stripped.
    """
    if not name.startswith(ENV_PREFIX):
        raise ValueError(
            f"read_env only serves {ENV_PREFIX}* configuration variables, "
            f"got {name!r}"
        )
    raw = os.environ.get(name)
    if raw is None:
        return None
    raw = raw.strip()
    return raw if raw else None


def env_flag(name: str, default: bool = False) -> bool:
    """A boolean ``REPRO_*`` switch: unset → ``default``, ``"0"`` →
    ``False``, anything else → ``True`` (the ``REPRO_SANITIZE=1``
    convention)."""
    raw = read_env(name)
    if raw is None:
        return default
    return raw != "0"


def env_int(name: str) -> int | None:
    """An integer ``REPRO_*`` value, or ``None`` when unset; raises a
    :class:`ValueError` naming the variable on garbage."""
    raw = read_env(name)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be a positive integer, got {raw!r}"
        ) from None
