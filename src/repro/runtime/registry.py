"""WORKLOADS: the named protocol populations the stack can execute.

The scenario engine, the churn rebuild, the §4 hybrid pipeline, and the
prior-work baselines each expose a builder entry point with its own tier
vocabulary.  Before this registry, every layer that accepted a workload
name re-validated tier membership by hand (three separate copies of the
``HYBRID_TIERS`` check lived in ``hybrid/components.py``,
``scenarios/runner.py``, and ``graphs/churn.py``); new workloads had to
re-plumb the same checks again.  Now a workload *declares* its tier
support once, and every layer asks the registry:

>>> from repro.runtime import WORKLOADS, validate_tier
>>> WORKLOADS["rooting"].tiers
('object', 'batch', 'soa')
>>> validate_tier("hybrid", "soa")
'soa'

``validate_tier`` raises one consistent, choice-listing message
(``"{workload} tier must be one of {tiers}, got {value!r}"``) at every
call site.  Builders are dotted references resolved lazily on
:meth:`Workload.load`, so the registry itself stays import-light (this
module sits in the leaf :mod:`repro.runtime` package and must not pull
engine layers in at import time).
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module

from repro.runtime.context import EXPANDER_MODES, HYBRID_TIERS, ROOTING_TIERS

__all__ = ["WORKLOADS", "Workload", "get_workload", "validate_tier"]


@dataclass(frozen=True)
class Workload:
    """One named protocol population and its declared execution support.

    ``builder`` is a lazy dotted reference (``"module:callable"``) to the
    population builder / pipeline entry point, resolved on first
    :meth:`load`.  ``tiers`` is the tier vocabulary the workload's
    ``tier=``-style knob accepts; ``tier_field`` names the
    :class:`~repro.runtime.context.RunContext` field that carries the
    selection for this workload.
    """

    name: str
    description: str
    tiers: tuple[str, ...]
    tier_field: str
    builder: str

    def load(self):
        """Import and return the builder callable (cycle-safe: deferred
        past module import so ``repro.runtime`` stays a leaf package)."""
        module, _, attr = self.builder.partition(":")
        return getattr(import_module(module), attr)

    def validate_tier(self, tier: str) -> str:
        """``tier``, or a :class:`ValueError` listing the valid choices —
        the one membership check the stack's layers share."""
        if tier not in self.tiers:
            raise ValueError(
                f"{self.name} tier must be one of {self.tiers}, got {tier!r}"
            )
        return tier


#: Every named workload the stack can run, keyed by name.  PR 11+
#: (traffic harness, baseline arena) adds entries here instead of
#: re-plumbing tier/worker/tracer knobs through each layer.
WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in (
        Workload(
            name="rooting",
            description=(
                "message-level Theorem 1.1 rooting population under the "
                "footnote-2 synchroniser"
            ),
            tiers=ROOTING_TIERS,
            tier_field="rooting",
            builder="repro.core.protocol_tree:build_rooting_population",
        ),
        Workload(
            name="expander",
            description=(
                "CreateExpander phase of the Theorem 1.1 pipeline "
                "(random-walk spanner construction)"
            ),
            tiers=EXPANDER_MODES,
            tier_field="expander",
            builder="repro.core.pipeline:build_well_formed_tree",
        ),
        Workload(
            name="hybrid",
            description=(
                "§4 hybrid connected-components pipeline over a port "
                "graph or CSR adjacency"
            ),
            tiers=HYBRID_TIERS,
            tier_field="hybrid",
            builder="repro.hybrid.components:connected_components_hybrid",
        ),
        Workload(
            name="churn-rebuild",
            description=(
                "crash waves kill for good; the hybrid pipeline rebuilds "
                "per-component well-formed trees over the survivors"
            ),
            tiers=HYBRID_TIERS,
            tier_field="hybrid",
            builder="repro.graphs.churn:rebuild_survivor_overlay",
        ),
        Workload(
            name="supernode-merge",
            description=(
                "Angluin-style grouping/merging baseline (O(log² n) "
                "rounds; the prior-work comparison arm)"
            ),
            tiers=("object",),
            tier_field="rooting",
            builder="repro.baselines:supernode_merge",
        ),
        Workload(
            name="pointer-jumping",
            description=(
                "unbounded-communication pointer jumping baseline "
                "(O(log n) rounds, Θ(n) messages per node)"
            ),
            tiers=("object",),
            tier_field="rooting",
            builder="repro.baselines:pointer_jumping",
        ),
        Workload(
            name="flooding",
            description="naive full-knowledge flooding baseline",
            tiers=("object",),
            tier_field="rooting",
            builder="repro.baselines:flooding",
        ),
    )
}


def get_workload(name: str) -> Workload:
    """The registry entry for ``name``, or a choice-listing error."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None


def validate_tier(workload: str, tier: str) -> str:
    """Registry-backed tier membership check — the single replacement
    for the per-module ``if tier not in HYBRID_TIERS`` copies."""
    return get_workload(workload).validate_tier(tier)
