"""RunContext: the one execution-configuration object of the stack.

Every knob that selects *how* a population executes — delivery engine,
rooting/expander/hybrid tier, shard worker count, tracer, sanitizer and
debug flags, the layout-reuse toggle, the fault spec, the seed — used to
be resolved independently at each call site (``select_tier`` here,
``resolve_workers`` there, a raw ``REPRO_*`` read somewhere else).  This
module replaces that scatter with one frozen dataclass built through one
precedence chain:

    explicit kwarg  >  CLI value  >  ``REPRO_*`` environment  >  default

Contract C8 (``docs/contracts.md``): a :class:`RunContext` is immutable
— context fields never change mid-run — and it is the *only*
configuration source; the environment step of the chain lives in
:mod:`repro.runtime.envsource` and nowhere else (repro-lint ``RL601``).

Two construction paths:

- :meth:`RunContext.resolve` runs the full chain.  ``cli`` is an
  ``argparse`` namespace (or dict) whose matching attribute names are
  consulted between kwargs and the environment; unknown field names in
  ``overrides`` raise.
- every public entry point of the stack keeps its historical kwargs
  (``engine=``, ``workers=``, ``tracer=``, ...) as thin shims that build
  a context internally via :meth:`RunContext.resolve` /
  :meth:`RunContext.with_overrides` — so existing call sites keep
  working unchanged while the resolution logic exists exactly once.

The tier vocabulary (one tuple per stack dimension) is authoritative
here: :mod:`repro.net.network`, :mod:`repro.core.pipeline`,
:mod:`repro.core.protocol_tree`, and :mod:`repro.hybrid.components`
import their choice tuples from this module (it imports nothing outside
the stdlib at module level, so it sits below every engine layer).
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields

from repro.runtime.envsource import env_flag, env_int, read_env

__all__ = [
    "ENGINES",
    "TIER_CHOICES",
    "ROOTING_MODES",
    "ROOTING_TIERS",
    "EXPANDER_MODES",
    "HYBRID_TIERS",
    "TIER_KINDS",
    "WORKERS_ENV",
    "RunContext",
    "choice_specified",
    "resolve_workers",
    "select_choice",
    "workers_specified",
]

# ----------------------------------------------------------------------
# Tier vocabularies (single source of truth for the whole stack)
# ----------------------------------------------------------------------
#: Delivery engines of :class:`repro.net.network.SyncNetwork`.
ENGINES = ("legacy", "vectorized")

#: Execution tiers for stack-aware benchmarks: the two delivery engines
#: plus ``"soa"`` — structure-of-arrays protocol classes on the
#: vectorized delivery path (one Python call advances all nodes).
TIER_CHOICES = ENGINES + ("soa",)

#: How the Theorem 1.1 rooting phase executes
#: (:func:`repro.core.pipeline.build_well_formed_tree`).
ROOTING_MODES = ("reference", "protocol", "batch", "soa")

#: Node representations of the message-level rooting *population*
#: (:func:`repro.core.protocol_tree.build_rooting_population`) — the
#: scenario engine's rooting-workload tiers.
ROOTING_TIERS = ("object", "batch", "soa")

#: How the Theorem 1.1 ``CreateExpander`` phase executes.
EXPANDER_MODES = ("walks", "protocol", "batch", "soa")

#: Execution tiers of the §4 hybrid pipeline
#: (:func:`repro.hybrid.components.connected_components_hybrid`).
HYBRID_TIERS = ("object", "soa")

#: Environment variable of the shard worker count (kept importable from
#: :mod:`repro.net.shard` for backward compatibility).
WORKERS_ENV = "REPRO_WORKERS"

#: The choice-valued stack dimensions: field name → (env var, default,
#: choices).  One table instead of one copy-pasted resolver per module.
TIER_KINDS: dict[str, tuple[str, str, tuple[str, ...]]] = {
    "engine": ("REPRO_ENGINE", "vectorized", TIER_CHOICES),
    "rooting": ("REPRO_ROOTING", "reference", ROOTING_MODES),
    "expander": ("REPRO_EXPANDER", "walks", EXPANDER_MODES),
    "hybrid": ("REPRO_HYBRID", "object", HYBRID_TIERS),
}

_SEED_ENV = "REPRO_SEED"


# ----------------------------------------------------------------------
# Single-field resolvers (the harness delegates here)
# ----------------------------------------------------------------------
def select_choice(
    kind: str,
    cli_value: str | None = None,
    default: str | None = None,
    choices: tuple[str, ...] | None = None,
) -> str:
    """Resolve one choice-valued stack dimension through the chain.

    ``kind`` is a key of :data:`TIER_KINDS`.  Precedence: ``cli_value``
    > the kind's environment variable > ``default`` > the kind's
    conventional default.  Raises on unknown kinds and names so typos
    fail loudly; pass ``choices`` to restrict (e.g. :data:`ENGINES` for
    engine-only benches).
    """
    if kind not in TIER_KINDS:
        raise ValueError(f"kind must be one of {tuple(TIER_KINDS)}, got {kind!r}")
    env_var, kind_default, kind_choices = TIER_KINDS[kind]
    value = cli_value or read_env(env_var) or default or kind_default
    if choices is None:
        choices = kind_choices
    if value not in choices:
        raise ValueError(f"{kind} must be one of {choices}, got {value!r}")
    return value


def choice_specified(kind: str, cli_value: str | None = None) -> bool:
    """Whether the user chose anything for ``kind`` (CLI or env) — the
    "time every stack unless restricted" bench pattern."""
    if kind not in TIER_KINDS:
        raise ValueError(f"kind must be one of {tuple(TIER_KINDS)}, got {kind!r}")
    return bool(cli_value) or read_env(TIER_KINDS[kind][0]) is not None


def resolve_workers(workers: int | None = None) -> int:
    """Normalise a shard worker count (``None`` → ``REPRO_WORKERS`` → 1)."""
    if workers is None:
        workers = env_int(WORKERS_ENV)
        if workers is None:
            return 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def workers_specified(cli_value: int | None = None) -> bool:
    """Whether the user pinned a worker count (CLI or ``REPRO_WORKERS``)."""
    return cli_value is not None or read_env(WORKERS_ENV) is not None


def _cli_value(cli, name: str):
    if cli is None:
        return None
    if isinstance(cli, dict):
        return cli.get(name)
    return getattr(cli, name, None)


def _resolve_seed(value, cli) -> int | None:
    if value is None:
        value = _cli_value(cli, "seed")
    if value is None:
        value = env_int(_SEED_ENV)
    if value is None:
        return None
    seed = int(value)
    if seed < 0:
        raise ValueError(f"seed must be >= 0, got {seed}")
    return seed


def _resolve_flag(name: str, env_var: str, default: bool, value, cli) -> bool:
    if value is None:
        value = _cli_value(cli, name)
    if value is None:
        return env_flag(env_var, default)
    return bool(value)


# ----------------------------------------------------------------------
# The context object
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunContext:
    """One frozen snapshot of everything that selects an execution.

    Attributes
    ----------
    engine:
        Delivery engine / execution tier (:data:`TIER_CHOICES`; the
        network itself accepts the :data:`ENGINES` subset — ``"soa"`` is
        a *node representation* on the vectorized engine).
    rooting, expander:
        Theorem 1.1 phase modes (:data:`ROOTING_MODES`,
        :data:`EXPANDER_MODES`).
    hybrid:
        §4 pipeline tier (:data:`HYBRID_TIERS`).
    workers:
        Shard worker count of the SoA delivery tail (≥ 1; every count
        is bit-for-bit identical).
    seed:
        The run's seed, when the caller routes RNG construction through
        the context (:meth:`rng`); ``None`` means the caller supplies
        its own generator.
    sanitize, debug_soa:
        Runtime-invariant flags (``REPRO_SANITIZE`` /
        ``REPRO_DEBUG_SOA``); recorded so artifacts know whether checks
        were armed.  The module-level switches
        (:data:`repro.sanitize.ENABLED`,
        :data:`repro.net.soa.DEBUG_VALIDATE`) remain the hot-path
        drivers — ``sanitize`` resolves true when either the
        environment or the module flag is armed.
    layout_reuse:
        The persistent receiver-sorted layout cache of the SoA round
        loop (``REPRO_SOA_LAYOUT_REUSE``; default on — timing-only, the
        control arm of bench_s3's re-sort measurement).
    tracer:
        A :class:`repro.obs.Tracer` or ``None``; resolved through the
        ambient-session / ``REPRO_TRACE`` chain when unspecified.
    fault_hook:
        The oblivious message adversary installed in the delivery tail
        (kwarg-only; no CLI or environment form).
    """

    engine: str = "vectorized"
    rooting: str = "reference"
    expander: str = "walks"
    hybrid: str = "object"
    workers: int = 1
    seed: int | None = None
    sanitize: bool = False
    debug_soa: bool = False
    layout_reuse: bool = True
    tracer: object | None = None
    fault_hook: object | None = None

    # ------------------------------------------------------------------
    @classmethod
    def resolve(cls, cli=None, **overrides) -> "RunContext":
        """Build a context through the full precedence chain.

        ``cli`` is an ``argparse`` namespace or dict consulted (by field
        name) between explicit ``overrides`` and the environment; an
        override of ``None`` means "unspecified" and falls through the
        chain.  Unknown override names raise.
        """
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(overrides) - known
        if unknown:
            raise ValueError(
                f"unknown RunContext field(s) {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        values: dict[str, object] = {}
        for kind in TIER_KINDS:
            values[kind] = select_choice(
                kind, cli_value=overrides.get(kind) or _cli_value(cli, kind)
            )
        workers = overrides.get("workers")
        if workers is None:
            workers = _cli_value(cli, "workers")
        values["workers"] = resolve_workers(workers)
        values["seed"] = _resolve_seed(overrides.get("seed"), cli)
        sanitize = _resolve_flag(
            "sanitize", "REPRO_SANITIZE", False, overrides.get("sanitize"), cli
        )
        if overrides.get("sanitize") is None and not sanitize:
            # The module switch is flippable by tests at runtime; honour
            # it like the environment (either arms the checks).
            from repro import sanitize as _sanitize

            sanitize = _sanitize.ENABLED
        values["sanitize"] = sanitize
        debug = overrides.get("debug_soa")
        if debug is None:
            debug = _cli_value(cli, "debug_soa")
        if debug is None:
            # REPRO_SANITIZE implies the SoA column validation.
            debug = env_flag("REPRO_DEBUG_SOA", False) or sanitize
        values["debug_soa"] = bool(debug)
        values["layout_reuse"] = _resolve_flag(
            "layout_reuse",
            "REPRO_SOA_LAYOUT_REUSE",
            True,
            overrides.get("layout_reuse"),
            cli,
        )
        tracer = overrides.get("tracer")
        if tracer is None:
            # Ambient capture()/activate() scope, then REPRO_TRACE.
            from repro.obs import resolve_tracer

            tracer = resolve_tracer(None)
        values["tracer"] = tracer
        values["fault_hook"] = overrides.get("fault_hook")
        return cls(**values)

    def with_overrides(self, **overrides) -> "RunContext":
        """A copy with the non-``None`` overrides applied (validated);
        the compatibility-shim merge: explicit kwargs beat the context."""
        known = {f.name for f in dataclass_fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ValueError(
                f"unknown RunContext field(s) {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        values = {f.name: getattr(self, f.name) for f in dataclass_fields(self)}
        for name, value in overrides.items():
            if value is None:
                continue
            if name in TIER_KINDS:
                _env, _default, choices = TIER_KINDS[name]
                if value not in choices:
                    raise ValueError(
                        f"{name} must be one of {choices}, got {value!r}"
                    )
            elif name == "workers":
                value = resolve_workers(value)
            elif name == "seed":
                value = int(value)
                if value < 0:
                    raise ValueError(f"seed must be >= 0, got {value}")
            elif name in ("sanitize", "debug_soa", "layout_reuse"):
                value = bool(value)
            values[name] = value
        return type(self)(**values)

    # ------------------------------------------------------------------
    def rng(self):
        """A fresh generator for :attr:`seed` (seed discipline: contexts
        carry seeds, never live generator state — two calls return
        identically seeded, independent generators)."""
        if self.seed is None:
            raise ValueError(
                "RunContext.seed is unset; resolve the context with an "
                "explicit seed (or REPRO_SEED) before asking it for a "
                "generator"
            )
        import numpy as np

        return np.random.default_rng(self.seed)

    def as_dict(self) -> dict:
        """JSON-safe snapshot of the resolved configuration — what bench
        artifacts record so every number names the stack that produced
        it.  Live objects (tracer, fault hook) render as presence flags."""
        return {
            "engine": self.engine,
            "rooting": self.rooting,
            "expander": self.expander,
            "hybrid": self.hybrid,
            "workers": self.workers,
            "seed": self.seed,
            "sanitize": self.sanitize,
            "debug_soa": self.debug_soa,
            "layout_reuse": self.layout_reuse,
            "traced": self.tracer is not None,
            "fault_hook": self.fault_hook is not None,
        }
