"""The execution-configuration layer of the stack.

- :mod:`repro.runtime.context` — :class:`RunContext`, the one frozen
  execution-config object (contract C8), built through the
  kwarg > CLI > env > default precedence chain; plus the authoritative
  tier vocabularies and the single-field resolvers the harness and the
  network delegate to.
- :mod:`repro.runtime.registry` — :data:`WORKLOADS`, named protocol
  populations with declared tier support and the registry-backed
  ``validate_tier`` membership check.
- :mod:`repro.runtime.envsource` — the only module allowed to read
  ``REPRO_*`` environment variables (repro-lint ``RL601``).

This package is a *leaf*: it imports nothing from the engine layers at
module import time, so :mod:`repro.net`, :mod:`repro.core`,
:mod:`repro.hybrid`, and :mod:`repro.scenarios` can all import their
choice tuples and resolvers from here without cycles.
"""

from repro.runtime.context import (
    ENGINES,
    EXPANDER_MODES,
    HYBRID_TIERS,
    ROOTING_MODES,
    ROOTING_TIERS,
    TIER_CHOICES,
    TIER_KINDS,
    WORKERS_ENV,
    RunContext,
    choice_specified,
    resolve_workers,
    select_choice,
    workers_specified,
)
from repro.runtime.envsource import ENV_PREFIX, env_flag, env_int, read_env
from repro.runtime.registry import WORKLOADS, Workload, get_workload, validate_tier

__all__ = [
    "ENGINES",
    "ENV_PREFIX",
    "EXPANDER_MODES",
    "HYBRID_TIERS",
    "ROOTING_MODES",
    "ROOTING_TIERS",
    "TIER_CHOICES",
    "TIER_KINDS",
    "WORKERS_ENV",
    "RunContext",
    "WORKLOADS",
    "Workload",
    "choice_specified",
    "env_flag",
    "env_int",
    "get_workload",
    "read_env",
    "resolve_workers",
    "select_choice",
    "select_workers",
    "validate_tier",
    "workers_specified",
]

#: Back-compat alias: the harness historically named this
#: ``select_workers``; both resolve through the same chain.
select_workers = resolve_workers
