"""Columnar α-synchroniser: a flat delay queue for SoA populations.

The footnote-2 synchroniser of :mod:`repro.net.asynchrony` holds round
``i``'s messages until ``i · max_delay`` time units elapse.  For per-node
tiers that holding is implicit (inboxes sit in per-node pending lists);
at ``n ≥ 10⁵`` the per-node representation itself is the bottleneck, so
delay/churn sweeps were capped at batch scale.

This module synchronises a whole :class:`~repro.net.soa.SoAProtocolClass`
population with **flat columns end to end**:

- after each delivery round, the staged :class:`~repro.net.soa.SoAInbox`
  is pulled out of the network (:meth:`SyncNetwork.take_staged_soa_inbox`)
  and pushed into a :class:`SoADelayQueue` — one *release-time column*
  (``arrival = clock + delay``) alongside the message columns;
- at the barrier (``clock += max_delay``) the queue releases every
  message whose arrival time has passed, restores receiver-sorted order
  with the same stable bucketing sort the delivery tail uses
  (:func:`repro.net.vectorops.group_argsort`), and re-stages the result.

Because every delay is at most ``max_delay``, each barrier drains the
queue completely and the released columns coincide exactly with what the
synchronous run would have staged — the execution is **bit-for-bit** the
synchronous one (same tree, metrics, round ledger under the same seed),
while the report accounts the dilated clock.  The per-message release
times are real, though: ``observed_max_delay`` is exact, and the delay
draws align bit-for-bit with the per-node synchroniser's stream, so the
two synchronisers are directly comparable under a shared seed
(``tests/scenarios/test_soa_sync.py`` pins all three equalities over a
12-seed matrix).
"""

from __future__ import annotations

import numpy as np

from repro.net import soa as _soa
from repro.net.asynchrony import AsyncReport
from repro.net.network import CapacityPolicy, SyncNetwork
from repro.net.soa import SoAInbox, SoAProtocolClass
from repro.net.vectorops import group_argsort
from repro.runtime import RunContext

__all__ = ["SoADelayQueue", "run_soa_synchroniser"]

_NO_COLUMN = np.empty(0, dtype=np.int64)


class SoADelayQueue:
    """In-flight messages as flat parallel columns keyed by release time.

    ``push`` appends a round's staged inbox with per-message absolute
    release times; ``release_until`` removes everything due by ``now``
    and returns it as a receiver-sorted :class:`SoAInbox` (stable
    bucketing, so messages of one push keep their canonical relative
    order — under the α-synchroniser barrier this reproduces the staged
    inbox exactly).  Scalar kind codes are preserved when the whole queue
    is uniform (the common one-kind-per-round protocol schedule), so the
    released inbox keeps the ``of_kind`` fast path.  The column
    mechanics (scalar-preserving concat, ordered gather) live on
    :class:`SoAInbox` itself.
    """

    __slots__ = ("n", "_release", "_inbox", "_pushes")

    def __init__(self, n: int) -> None:
        self.n = n
        self._release = _NO_COLUMN
        self._inbox = SoAInbox.empty()
        self._pushes = 0

    def __len__(self) -> int:
        return int(self._release.shape[0])

    # ------------------------------------------------------------------
    def push(self, inbox: SoAInbox, release: np.ndarray) -> None:
        """Enqueue one round's (receiver-sorted) staged inbox with
        absolute ``release`` times."""
        if len(inbox) == 0:
            return
        if release.shape[0] != len(inbox):
            raise ValueError("release-time column must match the inbox length")
        if _soa.DEBUG_VALIDATE:
            r = inbox.receivers
            if r.shape[0] > 1 and bool((r[1:] < r[:-1]).any()):
                raise ValueError(
                    "SoADelayQueue.push input is not receiver-sorted; pushes "
                    "must be staged (receiver-sorted) inboxes — only the "
                    "*release* re-sorts"
                )
        self._release = (
            release if len(self) == 0 else np.concatenate([self._release, release])
        )
        # check=False: the accumulated buffer is segment-ordered (pushes
        # back to back), not globally receiver-sorted — release re-sorts.
        self._inbox = SoAInbox.concat([self._inbox, inbox], check=False)
        self._pushes += 1

    # ------------------------------------------------------------------
    def release_until(self, now: int, require_drain: bool = False) -> SoAInbox:
        """Dequeue every message with ``release <= now`` as a
        receiver-sorted :class:`SoAInbox` (stable bucketing).

        The boundary is inclusive: a message whose delay equals the
        barrier length releases at exactly that barrier (the
        ``LinkDelay(max_delay) == barrier`` case — pinned by
        ``tests/scenarios/test_soa_sync.py``).  With ``require_drain``
        the caller asserts the α-synchroniser invariant that a barrier
        empties the queue completely; a message still held afterwards
        means its delay exceeded the barrier, which under footnote 2
        cannot happen — the queue raises a clear error instead of letting
        the run starve into a confusing non-quiescence failure (or a
        silent ``converged=False``).
        """
        if len(self) == 0:
            return SoAInbox.empty()
        due = self._release <= now
        if require_drain and not due.all():
            held = int((~due).sum())
            raise RuntimeError(
                f"{held} message(s) delayed beyond the synchroniser barrier "
                f"(release > {now}); delays must be <= the barrier length "
                "(ScenarioSpec.max_delay) under the footnote-2 α-synchroniser"
            )
        if due.all():
            released = self._inbox
            single_push = self._pushes == 1
            self._release = _NO_COLUMN
            self._inbox = SoAInbox.empty()
            self._pushes = 0
            # The α-synchroniser steady state: one staged inbox in
            # flight, fully drained at the barrier.  It is already
            # receiver-sorted (the delivery tail's invariant), so the
            # bucketing sort would be the identity — skip it and hand
            # the columns back without a copy.
            if single_push:
                return released
        else:
            released = self._inbox.take(np.flatnonzero(due))
            keep = np.flatnonzero(~due)
            self._release = self._release[keep]
            self._inbox = self._inbox.take(keep)
        if len(released) == 0:
            return SoAInbox.empty()
        # Restore receiver grouping: the released columns are pushes'
        # receiver-sorted segments back to back, so one stable bucketing
        # sort rebuilds the canonical per-receiver sequences.
        return released.take(group_argsort(released.receivers, self.n))


def run_soa_synchroniser(
    soa_class: SoAProtocolClass,
    capacity: CapacityPolicy,
    rng: np.random.Generator,
    delay_rng: np.random.Generator,
    max_delay: int,
    max_rounds: int,
    engine: str = "vectorized",
    require_quiescence: bool = True,
    fault_hook=None,
    workers: int | None = None,
    tracer=None,
    *,
    ctx: RunContext | None = None,
) -> tuple[AsyncReport, SyncNetwork]:
    """Drive an SoA population under the footnote-2 synchroniser.

    The SoA counterpart of the per-node loop in
    :func:`repro.net.asynchrony.run_with_asynchrony` (which dispatches
    here — call that instead of this directly).  Per logical round: one
    ``run_round``, one delay draw over the delivered messages, one queue
    push, one barrier release.  No per-node Python work anywhere, which
    is what makes delay/churn sweeps practical at ``n ≥ 10⁵``
    (``benchmarks/bench_s4_scenario_scaling.py``).

    ``workers`` shards the delivery tail (see :mod:`repro.net.shard`);
    the fault hook and the delay queue sit *outside* the sharded sort —
    the hook sees the canonical pre-sort stream and the queue the merged
    receiver-sorted columns — so every worker count reproduces the
    identical execution, delay draws and fault streams included.
    """
    if ctx is None:
        ctx = RunContext.resolve(
            engine=engine, workers=workers, tracer=tracer, fault_hook=fault_hook
        )
    else:
        ctx = ctx.with_overrides(
            engine=engine, workers=workers, tracer=tracer, fault_hook=fault_hook
        )
    tracer = ctx.tracer
    network = SyncNetwork(soa_class, capacity, rng, ctx=ctx)
    # Traced runs additionally record the synchroniser's own per-round
    # view (staged/released/held queue depths) — observation only, read
    # after each barrier; the delay draws and release order are
    # untouched, so a traced run is bit-for-bit the untraced one.
    sync_trace = None
    trace_clock = None
    if tracer is not None:
        sync_trace = tracer.table(
            "sync",
            ("round", "staged", "released", "held"),
            meta={"n": soa_class.n, "max_delay": max_delay},
        )
        trace_clock = tracer.clock
    queue = SoADelayQueue(soa_class.n)
    clock = 0
    observed = 0
    rounds = 0
    converged = False
    for _ in range(max_rounds):
        start = trace_clock() if sync_trace is not None else 0.0
        network.run_round()
        rounds += 1
        staged = network.take_staged_soa_inbox()
        m = len(staged)
        if m:
            delays = delay_rng.integers(1, max_delay + 1, size=m)
            observed = max(observed, int(delays.max(initial=0)))
            queue.push(staged, clock + delays)
        # The barrier: wait out the slowest possible link, then deliver
        # everything that has arrived (under the α-synchroniser, all of
        # it — require_drain turns a delay beyond the barrier into an
        # immediate, clearly-attributed error).
        clock += max_delay
        released = queue.release_until(clock, require_drain=True)
        network.stage_soa_inbox(released)
        if sync_trace is not None:
            sync_trace.append(
                rounds - 1, m, len(released), len(queue), trace_clock() - start
            )
        if not network.pending_messages() and not len(queue) and soa_class.is_idle():
            converged = True
            break
    if not converged and require_quiescence:
        raise RuntimeError(
            f"asynchronous run did not quiesce within {max_rounds} rounds "
            f"({network.pending_messages() + len(queue)} messages still in flight)"
        )
    report = AsyncReport(
        logical_rounds=rounds,
        max_delay=max_delay,
        elapsed_time_units=rounds * max_delay,
        observed_max_delay=observed,
        converged=converged,
    )
    return report, network
