"""Declarative fault-scenario specifications and their columnar compilation.

A :class:`ScenarioSpec` names a *stack* of adversaries acting on one run:

- :class:`LinkDelay` — i.i.d. per-message delays uniform on
  ``[1, max_delay]``, absorbed by the footnote-2 synchroniser barrier
  (handled by :mod:`repro.net.asynchrony` / :mod:`repro.scenarios.soa_sync`,
  not by the fault hook);
- :class:`MessageDrop` — oblivious Bernoulli link loss: each remote
  message is destroyed independently with probability ``p``;
- :class:`CrashWave` — a fraction of nodes crashes at a given round and is
  *isolated* by the network (all traffic to and from them is dropped)
  until an optional rejoin round — the oblivious message-adversary model
  of churn, which keeps the fault purely inside the delivery tail;
- :class:`Partition` — for rounds ``[start, stop)`` the population is
  split into blocks and cross-block messages are dropped.

``spec.compile(n)`` produces a :class:`FaultInjector`: per-node columns
(crash intervals, block ids) plus per-round Bernoulli streams, exposed as
the ``fault_hook`` callable that :class:`repro.net.network.SyncNetwork`
invokes on the round's remote traffic in canonical order.

**RNG-stream discipline.**  Fault randomness never touches the delivery
generator.  Compile-time draws (who crashes, block membership) and
round-time draws (drop coin flips) come from ``default_rng`` streams
keyed on ``(fault_seed, adversary-tag, index)`` — fully determined by the
spec, independent of tier, engine, and protocol.  Because every tier
presents the identical canonical message columns at the hook point, the
same spec + seed yields bit-for-bit identical faulted executions on the
object, batch, and SoA tiers (``tests/scenarios/test_spec.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LinkDelay",
    "MessageDrop",
    "CrashWave",
    "Partition",
    "ScenarioSpec",
    "FaultInjector",
]

# Stream tags separating the adversaries' RNG families (arbitrary
# distinct constants folded into the seed sequence).
_CRASH_TAG = 101
_PARTITION_TAG = 211
_DROP_TAG = 307

#: Sentinel "never rejoins" end round for crash intervals.
_NEVER = np.iinfo(np.int64).max


@dataclass(frozen=True)
class LinkDelay:
    """I.i.d. uniform message delays on ``[1, max_delay]`` time units."""

    max_delay: int = 1

    def __post_init__(self) -> None:
        if self.max_delay < 1:
            raise ValueError("max_delay must be >= 1")


@dataclass(frozen=True)
class MessageDrop:
    """Oblivious Bernoulli link loss with per-message probability ``p``."""

    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")


@dataclass(frozen=True)
class CrashWave:
    """A fraction of nodes crashes at ``round_no`` (network isolation:
    all their traffic is dropped both directions), optionally rejoining —
    connectivity restored, state intact — at ``rejoin_round``.

    **Boundary semantics** (pinned by ``tests/scenarios/test_spec.py``):
    a message is subject to the fault state of the round it was *sent*
    in, and the crash interval is half-open — ``[round_no,
    rejoin_round)``.  A node rejoining in round ``r`` therefore does
    **not** receive messages sent in round ``r − 1`` (it was still
    isolated when they were sent); the first traffic it can exchange is
    sent in round ``r`` and arrives at the start of round ``r + 1``.
    Symmetrically, messages sent *to or by* the node in round
    ``round_no`` are already dropped.
    """

    round_no: int
    fraction: float
    rejoin_round: int | None = None

    def __post_init__(self) -> None:
        if self.round_no < 0:
            raise ValueError("crash round must be >= 0")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("crash fraction must be in [0, 1]")
        if self.rejoin_round is not None and self.rejoin_round <= self.round_no:
            raise ValueError("rejoin_round must be after the crash round")


@dataclass(frozen=True)
class Partition:
    """Temporary partition: during rounds ``[start, stop)`` the nodes are
    split into ``blocks`` uniform random blocks and cross-block messages
    are dropped.

    Same half-open, send-round boundary as :class:`CrashWave`:
    cross-block messages *sent* in rounds ``start … stop − 1`` are
    dropped; a message sent in round ``stop`` (the heal round) crosses
    freely and arrives in round ``stop + 1``.
    """

    start: int
    stop: int
    blocks: int = 2

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError("need 0 <= start < stop")
        if self.blocks < 2:
            raise ValueError("a partition needs at least 2 blocks")


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, seeded stack of adversaries for one run.

    ``fault_seed`` roots every fault draw; two runs of the same spec see
    the identical adversary regardless of protocol, tier, or engine.
    """

    name: str
    delay: LinkDelay | None = None
    drop: MessageDrop | None = None
    crashes: tuple[CrashWave, ...] = ()
    partition: Partition | None = None
    fault_seed: int = 0

    @property
    def max_delay(self) -> int:
        """The synchroniser barrier width (1 = effectively synchronous)."""
        return self.delay.max_delay if self.delay is not None else 1

    def has_faults(self) -> bool:
        """Whether compiling yields a fault hook at all (delay alone is
        handled by the synchroniser, not the hook)."""
        return bool(
            (self.drop is not None and self.drop.probability > 0.0)
            or self.crashes
            or self.partition is not None
        )

    def compile(self, n: int) -> "FaultInjector | None":
        """Compile the drop/crash/partition stack into columnar event
        streams over ``n`` contiguous node ids; ``None`` when the spec
        carries no hook-level faults."""
        if not self.has_faults():
            return None
        return FaultInjector(self, n)

    def describe(self) -> dict:
        """JSON-able summary of the adversary stack (runner row metadata)."""
        return {
            "name": self.name,
            "max_delay": self.max_delay,
            "drop_p": self.drop.probability if self.drop else 0.0,
            "crashes": [
                {
                    "round": w.round_no,
                    "fraction": w.fraction,
                    "rejoin_round": w.rejoin_round,
                }
                for w in self.crashes
            ],
            "partition": (
                {
                    "start": self.partition.start,
                    "stop": self.partition.stop,
                    "blocks": self.partition.blocks,
                }
                if self.partition
                else None
            ),
            "fault_seed": self.fault_seed,
        }


class FaultInjector:
    """Compiled columnar adversary: the network's ``fault_hook``.

    Holds per-node event columns — crash intervals as ``(starts, stops)``
    pairs per wave with the wave's membership mask, partition block ids —
    and derives each round's keep-mask with pure array operations over
    the canonical ``(senders, receivers)`` columns.  Stateless across
    calls (every mask is a function of ``round_no`` and the spec alone),
    so the injector may be shared between runs and tiers.
    """

    def __init__(self, spec: ScenarioSpec, n: int) -> None:
        if n <= 0:
            raise ValueError("a fault injector needs at least one node")
        self.spec = spec
        self.n = n
        seed = spec.fault_seed
        # Crash waves: membership drawn per wave from its own stream (the
        # shared node-failure draw of repro.graphs.churn.fail_mask).
        from repro.graphs.churn import fail_mask

        self._waves: list[tuple[int, int, np.ndarray]] = []
        for i, wave in enumerate(spec.crashes):
            wave_rng = np.random.default_rng([seed, _CRASH_TAG, i])
            alive = fail_mask(n, wave.fraction, wave_rng)
            stop = wave.rejoin_round if wave.rejoin_round is not None else _NEVER
            self._waves.append((wave.round_no, stop, ~alive))
        self._partition = spec.partition
        if spec.partition is not None:
            block_rng = np.random.default_rng([seed, _PARTITION_TAG])
            self._blocks = block_rng.integers(
                0, spec.partition.blocks, size=n, dtype=np.int64
            )
        else:
            self._blocks = None
        self._drop_p = spec.drop.probability if spec.drop is not None else 0.0
        # Per-round down-mask cache (crash waves change it only at wave
        # boundaries, and every tier asks for the same round in order).
        self._down_round = -1
        self._down: np.ndarray | None = None

    # ------------------------------------------------------------------
    def down_mask(self, round_no: int) -> np.ndarray | None:
        """Boolean per-node "crashed during this round" column (or None)."""
        if not self._waves:
            return None
        if round_no != self._down_round:
            down = None
            for start, stop, members in self._waves:
                if start <= round_no < stop:
                    down = members if down is None else (down | members)
            self._down_round = round_no
            self._down = down
        return self._down

    def __call__(
        self, round_no: int, senders: np.ndarray, receivers: np.ndarray
    ) -> np.ndarray | None:
        """Keep-mask over the round's remote messages (canonical order);
        ``None`` when no adversary is active this round."""
        keep: np.ndarray | None = None
        down = self.down_mask(round_no)
        if down is not None:
            keep = ~(down[senders] | down[receivers])
        part = self._partition
        if part is not None and part.start <= round_no < part.stop:
            same_block = self._blocks[senders] == self._blocks[receivers]
            keep = same_block if keep is None else keep & same_block
        if self._drop_p > 0.0:
            coin_rng = np.random.default_rng(
                [self.spec.fault_seed, _DROP_TAG, round_no]
            )
            survive = coin_rng.random(senders.shape[0]) >= self._drop_p
            keep = survive if keep is None else keep & survive
        return keep
