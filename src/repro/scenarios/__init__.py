"""Adversarial scenario engine: composable fault models for the NCC0 stack.

Real overlays face delays, drops, crashes, and partitions *simultaneously*
(§1.4's churn discussion and footnote 2's asynchrony caveat are where the
paper meets that reality).  This package turns those fault models into a
declarative, reproducible subsystem:

- :mod:`repro.scenarios.spec` — :class:`ScenarioSpec`, a stack of
  adversaries (link delays, oblivious message drops, crash waves with
  optional rejoin, temporary partitions), each compiled into columnar
  event streams applied inside the network's delivery tail, so all three
  execution tiers see *identical* faults under a shared seed;
- :mod:`repro.scenarios.soa_sync` — the columnar α-synchroniser: a flat
  delay queue (release-time column + stable bucketing) replacing per-node
  message holding, which is what lets delay/churn sweeps run at
  ``n ≥ 10⁵``;
- :mod:`repro.scenarios.runner` — :class:`ScenarioRunner`, executing
  named scenario grids (delay × drop × churn) across execution tiers and
  emitting machine-readable JSON
  (consumed by ``benchmarks/bench_s4_scenario_scaling.py``).
"""

from repro.scenarios.spec import (
    CrashWave,
    FaultInjector,
    LinkDelay,
    MessageDrop,
    Partition,
    ScenarioSpec,
)
from repro.scenarios.soa_sync import SoADelayQueue, run_soa_synchroniser
from repro.scenarios.runner import SCENARIO_GRIDS, ScenarioRunner, run_rooting_scenario

__all__ = [
    "CrashWave",
    "FaultInjector",
    "LinkDelay",
    "MessageDrop",
    "Partition",
    "ScenarioSpec",
    "SoADelayQueue",
    "run_soa_synchroniser",
    "SCENARIO_GRIDS",
    "ScenarioRunner",
    "run_rooting_scenario",
]
