"""ScenarioRunner: named adversarial grids over the rooting workload.

The runner executes a :class:`~repro.scenarios.spec.ScenarioSpec` grid
(delay × drop × churn × partition) against the message-level rooting
protocol on any execution tier and emits machine-readable JSON rows —
the measurement surface of the scenario engine
(``benchmarks/bench_s4_scenario_scaling.py`` consumes it, CI uploads it
as an artifact).

Every cell runs under the footnote-2 synchroniser
(:func:`repro.net.asynchrony.run_with_asynchrony`; ``max_delay = 1``
degenerates to the synchronous schedule) with the spec's compiled
:class:`~repro.scenarios.spec.FaultInjector` installed in the delivery
tail and ``require_quiescence=False`` — an adversary is *allowed* to
starve the protocol, and the row records whether it did (``converged``,
``spanned``, ``assigned_fraction``) rather than raising.

Because fault streams are functions of ``(spec, fault_seed, round)``
alone and every tier presents identical canonical message columns, the
same ``(spec, n, seed)`` cell produces the **identical row** on the
object, batch, and SoA tiers (modulo ``tier``/``wall_seconds`` — see
:func:`tier_invariant_view`); ``tests/scenarios/test_runner.py`` pins
this differentially.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import rooting_flood_rounds
from repro.core.protocol_tree import build_rooting_population
from repro.graphs.portgraph import PortGraph
from repro.net.asynchrony import run_with_asynchrony
from repro.net.network import CapacityPolicy
from repro.obs import maybe_span, resolve_tracer
from repro.runtime import RunContext, get_workload, validate_tier
from repro.scenarios.spec import (
    CrashWave,
    LinkDelay,
    MessageDrop,
    Partition,
    ScenarioSpec,
)

__all__ = [
    "SCENARIO_GRIDS",
    "ScenarioRunner",
    "delay_drop_churn_grid",
    "run_rooting_scenario",
    "run_churn_rebuild_scenario",
    "tier_invariant_view",
]


def run_rooting_scenario(
    graph: PortGraph,
    spec: ScenarioSpec,
    seed: int,
    tier: str = "soa",
    capacity: CapacityPolicy | None = None,
    max_rounds: int | None = None,
    tracer=None,
    *,
    ctx: RunContext | None = None,
) -> dict:
    """Run one scenario cell: rooting on ``graph`` under ``spec``.

    Returns a flat JSON-able row.  The delivery RNG is seeded with
    ``seed``; the adversary draws only from the spec's own fault streams,
    so matched ``(spec, seed)`` cells see identical executions across
    tiers.  A resolved ``tracer`` (kwarg or ambient — see
    :mod:`repro.obs`) wraps the cell in a ``cat="scenario"`` span and
    records the per-round tables underneath; rows are unchanged.
    """
    n = graph.n
    fr = rooting_flood_rounds(n)
    if capacity is None:
        capacity = CapacityPolicy.ncc0(n, graph.delta)
    if max_rounds is None:
        max_rounds = 5 * fr + 8  # the rooting runners' default budget
    population = build_rooting_population(graph, fr, tier)
    injector = spec.compile(n)
    if tracer is None and ctx is not None:
        tracer = ctx.tracer
    tracer = resolve_tracer(tracer)
    # Wall time is this harness's deliverable (scenario rows report
    # duration); measurement is the point here.
    start = time.perf_counter()  # repro-lint: disable=RL202
    with maybe_span(
        tracer,
        spec.name,
        cat="scenario",
        workload="rooting",
        n=n,
        tier=tier,
        seed=seed,
    ) as span:
        report, network = run_with_asynchrony(
            population,
            capacity,
            np.random.default_rng(seed),
            max_delay=spec.max_delay,
            max_rounds=max_rounds,
            require_quiescence=False,
            fault_hook=injector,
            tracer=tracer,
            ctx=ctx,
        )
    wall = time.perf_counter() - start  # repro-lint: disable=RL202
    if tier == "soa":
        parent, depth = population.parent, population.depth
    else:
        parent = np.fromiter(
            (population[v].parent for v in range(n)), dtype=np.int64, count=n
        )
        depth = np.fromiter(
            (population[v].depth for v in range(n)), dtype=np.int64, count=n
        )
    roots = np.flatnonzero(parent == np.arange(n, dtype=np.int64))
    metrics = network.metrics
    if span is not None:
        span.attrs["converged"] = bool(report.converged)
        span.attrs["rounds"] = int(report.logical_rounds)
        span.attrs["fault_drops"] = int(metrics.fault_drops)
    return {
        "scenario": spec.describe(),
        "n": n,
        "tier": tier,
        "seed": seed,
        "converged": report.converged,
        "rounds": report.logical_rounds,
        "elapsed_time_units": report.elapsed_time_units,
        "observed_max_delay": report.observed_max_delay,
        "spanned": bool((parent >= 0).all()) and roots.shape[0] == 1,
        "num_roots": int(roots.shape[0]),
        "root": int(roots[0]) if roots.shape[0] == 1 else -1,
        "assigned_fraction": float((parent >= 0).mean()),
        "tree_sha": hashlib.sha1(parent.tobytes() + depth.tobytes()).hexdigest()[:16],
        "total_messages": metrics.total_messages,
        "send_drops": metrics.send_drops,
        "receive_drops": metrics.receive_drops,
        "fault_drops": metrics.fault_drops,
        "wall_seconds": round(wall, 4),
    }


def run_churn_rebuild_scenario(
    graph: PortGraph,
    spec: ScenarioSpec,
    seed: int,
    tier: str = "soa",
    overlay_params=None,
    tracer=None,
    *,
    ctx: RunContext | None = None,
) -> dict:
    """Run one scenario-driven churn-rebuild cell: the spec's crash waves
    kill their members for good, and the §4 hybrid pipeline rebuilds
    per-component well-formed trees over every survivor on the chosen
    hybrid tier (:data:`repro.hybrid.components.HYBRID_TIERS`).

    The churn *is* the scenario: crashed membership comes from the
    compiled :class:`~repro.scenarios.spec.FaultInjector`'s down-mask at
    the last crash onset (so waves that already rejoined count as alive),
    making the kill set a pure function of ``(spec, fault_seed)`` —
    identical across tiers, like every other fault stream.  Survivor
    extraction and the ground-truth label check are columnar
    (:class:`~repro.hybrid.soa_pipeline.CSRAdjacency`), which is what
    lets the rebuild sweep run at ``n = 10⁵``
    (``benchmarks/bench_s5_hybrid_scaling.py``).
    """
    from repro.hybrid.components import connected_components_hybrid
    from repro.hybrid.soa_pipeline import CSRAdjacency, flood_min_ids_columns

    validate_tier("hybrid", tier)
    n = graph.n
    injector = spec.compile(n)
    alive = np.ones(n, dtype=bool)
    if spec.crashes:
        reference_round = max(w.round_no for w in spec.crashes)
        down = injector.down_mask(reference_round)
        if down is not None:
            alive = ~down
    survivors = np.flatnonzero(alive).astype(np.int64)
    if survivors.shape[0] < 2:
        raise ValueError(f"scenario {spec.name!r} left fewer than 2 survivors")

    # Columnar survivor-induced adjacency, relabelled to 0..k-1 (the
    # same extraction the direct-call churn rebuild uses).
    csr = CSRAdjacency.from_graph(graph).induced_by(alive)
    truth, _ = flood_min_ids_columns(csr)

    if tracer is None and ctx is not None:
        tracer = ctx.tracer
    tracer = resolve_tracer(tracer)
    # Wall time is this harness's deliverable (scenario rows report
    # duration); measurement is the point here.
    start = time.perf_counter()  # repro-lint: disable=RL202
    with maybe_span(
        tracer,
        spec.name,
        cat="scenario",
        workload="churn-rebuild",
        n=n,
        tier=tier,
        seed=seed,
    ) as span:
        result = connected_components_hybrid(
            csr,
            rng=np.random.default_rng(seed),
            overlay_params=overlay_params,
            tier=tier,
            tracer=tracer,
            ctx=ctx,
        )
    wall = time.perf_counter() - start  # repro-lint: disable=RL202
    labels = result.labels
    roots = np.unique(labels)
    if span is not None:
        span.attrs["survivors"] = int(survivors.shape[0])
        span.attrs["components"] = int(roots.shape[0])
    return {
        "scenario": spec.describe(),
        "workload": "churn-rebuild",
        "n": n,
        "tier": tier,
        "seed": seed,
        "survivors": int(survivors.shape[0]),
        "components": int(roots.shape[0]),
        "largest_fraction": float(
            np.bincount(labels, minlength=survivors.shape[0]).max()
            / max(1, survivors.shape[0])
        ),
        "labels_match_ground_truth": bool(np.array_equal(labels, truth)),
        "labels_sha": hashlib.sha1(labels.tobytes()).hexdigest()[:16],
        "forest_sha": hashlib.sha1(
            result.forest.parent.tobytes() + result.forest.root_of.tobytes()
        ).hexdigest()[:16],
        "ledger": result.ledger.summary(),
        "wall_seconds": round(wall, 4),
    }


def tier_invariant_view(row: dict) -> dict:
    """The row minus its tier label and wall clock — the part that must
    be identical across execution tiers for matched cells."""
    return {k: v for k, v in row.items() if k not in ("tier", "wall_seconds")}


# ----------------------------------------------------------------------
# Named grids
# ----------------------------------------------------------------------
def delay_drop_churn_grid(
    name: str = "delay_drop_churn",
    delays: tuple[int, ...] = (1, 4),
    drops: tuple[float, ...] = (0.0, 0.02),
    crash_fractions: tuple[float, ...] = (0.0, 0.1),
    crash_round: int = 2,
    rejoin_round: int | None = None,
    fault_seed: int = 0,
) -> tuple[ScenarioSpec, ...]:
    """The canonical delay × drop × churn cross as a spec tuple."""
    specs = []
    for d in delays:
        for p in drops:
            for c in crash_fractions:
                specs.append(
                    ScenarioSpec(
                        name=f"{name}/d{d}-p{p:g}-c{c:g}",
                        delay=LinkDelay(d) if d > 1 else None,
                        drop=MessageDrop(p) if p > 0 else None,
                        crashes=(
                            (CrashWave(crash_round, c, rejoin_round),) if c > 0 else ()
                        ),
                        fault_seed=fault_seed,
                    )
                )
    return tuple(specs)


#: Named scenario grids the runner (and the S4 bench CLI) resolve.
SCENARIO_GRIDS: dict[str, tuple[ScenarioSpec, ...]] = {
    # One representative of each adversary plus a composite — the quick
    # differential surface (CI smoke runs this on all three tiers).
    "smoke": (
        ScenarioSpec(name="smoke/baseline"),
        ScenarioSpec(name="smoke/delay4", delay=LinkDelay(4)),
        ScenarioSpec(name="smoke/drop5", drop=MessageDrop(0.05)),
        ScenarioSpec(
            name="smoke/churn10-rejoin",
            crashes=(CrashWave(round_no=2, fraction=0.1, rejoin_round=6),),
        ),
        ScenarioSpec(
            name="smoke/partition-heal",
            partition=Partition(start=1, stop=4, blocks=2),
        ),
        ScenarioSpec(
            name="smoke/composite",
            delay=LinkDelay(3),
            drop=MessageDrop(0.02),
            crashes=(CrashWave(round_no=3, fraction=0.05),),
        ),
    ),
    "delay_drop_churn": delay_drop_churn_grid(),
    "partition": (
        ScenarioSpec(
            name="partition/flood-split",
            partition=Partition(start=0, stop=6, blocks=2),
        ),
        ScenarioSpec(
            name="partition/late-split",
            partition=Partition(start=8, stop=14, blocks=3),
        ),
    ),
}


@dataclass
class ScenarioRunner:
    """Execute scenario grids over sizes × tiers × seeds.

    The graph family is the ring-plus-chords stand-in for evolution
    output shared with the S2/S3 benches (low diameter, degree ≤ 6), so
    scenario results stay comparable with the synchronous scaling story.

    ``workload`` selects what each cell runs: ``"rooting"`` (the
    message-level rooting protocol under the synchroniser, tiers from
    :data:`~repro.core.protocol_tree.ROOTING_TIERS`) or
    ``"churn-rebuild"`` (crash waves kill for good, the §4 hybrid
    pipeline rebuilds per-component trees over the survivors — tiers
    from :data:`repro.hybrid.components.HYBRID_TIERS`, with
    ``overlay_params`` forwarded to the hybrid overlay).

    ``tracer`` (optional) threads a :class:`repro.obs.Tracer` through
    every cell — each row becomes a ``cat="scenario"`` span over its
    per-round tables.  ``None`` still resolves an ambient
    :func:`repro.obs.capture` scope inside the cell runners.

    ``ctx`` (optional) threads one resolved
    :class:`~repro.runtime.context.RunContext` through every cell —
    workers, tracer, sanitize/debug flags — while the grid's own axes
    (``tiers``, seeds) still come from the runner; the cell runners'
    explicit arguments win over context fields, per the precedence
    chain.
    """

    sizes: tuple[int, ...] = (512,)
    seeds: tuple[int, ...] = (0, 1, 2)
    tiers: tuple[str, ...] = ("batch", "soa")
    delta: int = 16
    chords: int = 2
    workload: str = "rooting"
    overlay_params: object | None = None
    tracer: object | None = None
    ctx: RunContext | None = None

    def __post_init__(self) -> None:
        if self.workload not in ("rooting", "churn-rebuild"):
            raise ValueError(
                f"workload must be 'rooting' or 'churn-rebuild', got {self.workload!r}"
            )
        # Registry-backed tier support (repro.runtime.registry): each
        # workload declares its tier vocabulary once.
        workload = get_workload(self.workload)
        for tier in self.tiers:
            workload.validate_tier(tier)
        self._graphs: dict[int, PortGraph] = {}

    def graph_for(self, n: int) -> PortGraph:
        if n not in self._graphs:
            self._graphs[n] = PortGraph.ring_with_chords(
                n, delta=self.delta, chords=self.chords, seed=n
            )
        return self._graphs[n]

    # ------------------------------------------------------------------
    def run_cell(self, n: int, spec: ScenarioSpec, seed: int, tier: str) -> dict:
        """One (size, spec, seed, tier) cell of the configured workload."""
        if self.workload == "churn-rebuild":
            return run_churn_rebuild_scenario(
                self.graph_for(n),
                spec,
                seed,
                tier=tier,
                overlay_params=self.overlay_params,
                tracer=self.tracer,
                ctx=self.ctx,
            )
        return run_rooting_scenario(
            self.graph_for(n), spec, seed, tier=tier, tracer=self.tracer, ctx=self.ctx
        )

    def run_spec(self, spec: ScenarioSpec) -> list[dict]:
        """All (size, tier, seed) cells of one spec."""
        return [
            self.run_cell(n, spec, seed, tier)
            for n in self.sizes
            for tier in self.tiers
            for seed in self.seeds
        ]

    def run_grid(self, grid: str | tuple[ScenarioSpec, ...]) -> dict:
        """Execute a named (or explicit) grid; returns the JSON payload."""
        if isinstance(grid, str):
            if grid not in SCENARIO_GRIDS:
                raise ValueError(
                    f"unknown grid {grid!r}; known: {sorted(SCENARIO_GRIDS)}"
                )
            name, specs = grid, SCENARIO_GRIDS[grid]
        else:
            name, specs = "custom", tuple(grid)
        rows = [row for spec in specs for row in self.run_spec(spec)]
        return {
            "grid": name,
            "sizes": list(self.sizes),
            "tiers": list(self.tiers),
            "seeds": list(self.seeds),
            "rows": rows,
        }

    @staticmethod
    def write_json(payload: dict, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
